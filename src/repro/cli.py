"""Command-line interface: ``bpmax`` (or ``python -m repro``).

Subcommands
-----------
``run SEQ1 SEQ2``      score (and optionally fold) two strands
``fold SEQ``           single-strand weighted Nussinov folding
``scan QUERY TARGET``  slide QUERY along TARGET, rank windows by gain
                       (sweeps run through the serving layer, so
                       identical windows are served from cache)
``serve FILE``         serve a JSONL request stream through the batch layer
                       (``--http`` serves over sockets instead)
``submit SEQ1 SEQ2``   emit one JSONL request line for ``serve``
                       (``--url`` POSTs it to a running gateway)
``golden``             verify (or ``--regen``) the golden-corpus manifest
``experiment ID``      regenerate one paper table/figure (or ``all``)
``report FILE``        render a saved metrics report (``--metrics-out``)
``list``               list available experiments and engine variants
``backends``           list kernel backends available on this machine
``tune``               autotune the tiled backend's window-block width

Serving: ``bpmax serve requests.jsonl`` reads one JSON request object
per line (``bpmax submit`` writes them), batches same-shape problems,
deduplicates identical ones through the content-addressed result cache
and writes one JSON result object per line; ``--stats`` appends the
scheduler/cache summary to stderr, and ``--strict`` exits 2 when any
request failed.  ``--shards N`` routes through the multi-process tier
instead: N workers with consistent-hash cache sharding, admission
control (``--queue-limit``, per-request ``priority`` classes) and
self-healing respawn/re-route on worker death.

HTTP serving: ``bpmax serve --http --port 8642 --shards 2`` puts the
stdlib gateway (:mod:`repro.serve.http`) in front of the chosen tier —
``POST /v1/fold``, streaming ``POST /v1/batch``, ``GET /healthz``,
``GET /metrics`` — with admission verdicts mapped to 429/503 +
``Retry-After`` and graceful drain on SIGTERM.  ``bpmax submit SEQ1
SEQ2 --url http://HOST:PORT`` round-trips one request through a running
gateway with the retry-aware client.

Observability: ``run --metrics`` prints the observed-vs-predicted
operation counts (and saves them with ``--metrics-out report.json``);
``run --trace trace.json`` records spans of every layer to a JSON file.

Semirings: ``run``, ``scan`` and ``submit`` accept ``--semiring`` to
swap the reduction algebra — ``max-plus`` (BPMax scores, the default)
or ``logsumexp`` (BPPart-style log-partition values); ``bpmax
backends`` lists which backends support which algebra.

Error handling: every structured failure
(:class:`~repro.robust.errors.BpmaxError` — bad sequences, stale
checkpoints, engine crashes, exceeded deadlines) is caught at the
``main()`` boundary and reported as a one-line message with exit
status 2; pass ``--debug`` (before the subcommand) for the full
traceback.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack

from .bench.figures import EXPERIMENTS, run_experiment
from .core.api import bpmax, fold
from .core.engine import ENGINES
from .robust.errors import BpmaxError
from .serve.request import PRIORITY_CLASSES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="bpmax",
        description="BPMax RNA-RNA interaction (reproduction of Mondal & "
        "Rajopadhye 2021)",
    )
    p.add_argument(
        "--debug",
        action="store_true",
        help="show full tracebacks instead of one-line error messages",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="score two interacting strands")
    run.add_argument("seq1", help="first (outer, ideally shorter) strand")
    run.add_argument("seq2", nargs="?", default=None, help="second strand")
    run.add_argument(
        "--fasta",
        action="store_true",
        help="treat seq1 as a FASTA file containing (at least) two records",
    )
    run.add_argument(
        "--variant", default="hybrid-tiled", choices=ENGINES, help="program version"
    )
    run.add_argument(
        "--backend",
        metavar="NAME",
        help="kernel backend for the R0 hot path, e.g. 'tiled' for the "
        "tile-graph wavefront executor (see 'bpmax backends')",
    )
    run.add_argument(
        "--threads",
        type=int,
        default=1,
        metavar="N",
        help="row-partition the R0 products over a real thread pool",
    )
    run.add_argument(
        "--semiring",
        default="max-plus",
        metavar="NAME",
        help="reduction algebra: 'max-plus' (BPMax score, default) or "
        "'logsumexp' (BPPart-style log-partition value)",
    )
    run.add_argument(
        "--structure", action="store_true", help="also report one optimal structure"
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically snapshot the partial F table to PATH (.npz)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="restore a previous --checkpoint snapshot before running",
    )
    run.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="abort (exit 2) when the run exceeds this compute budget",
    )
    run.add_argument(
        "--fallback",
        metavar="VARIANTS",
        help="comma-separated variants to degrade to if the engine crashes "
        "(e.g. 'hybrid,baseline')",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="collect op/traffic counters and print the run report",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="save the run report as JSON (implies --metrics)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        help="record spans of every layer and save them as JSON",
    )

    rep = sub.add_parser("report", help="render a saved metrics report")
    rep.add_argument("file", help="JSON file written by 'run --metrics-out'")

    f = sub.add_parser("fold", help="fold one strand (weighted Nussinov)")
    f.add_argument("seq")

    sc = sub.add_parser("scan", help="windowed interaction scan")
    sc.add_argument("query", help="short strand (e.g. an sRNA)")
    sc.add_argument("target", help="long strand to scan")
    sc.add_argument("--window", type=int, default=24)
    sc.add_argument("--stride", type=int, default=6)
    sc.add_argument("--top", type=int, default=5)
    sc.add_argument(
        "--variant", default="hybrid-tiled", choices=ENGINES, help="program version"
    )
    sc.add_argument(
        "--backend",
        metavar="NAME",
        help="kernel backend for the R0 hot path (see 'bpmax backends')",
    )
    sc.add_argument(
        "--semiring",
        default="max-plus",
        metavar="NAME",
        help="reduction algebra for the sweep: 'max-plus' or 'logsumexp'",
    )
    sc.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="per-window result-cache capacity (0 disables caching)",
    )

    srv = sub.add_parser(
        "serve", help="serve a JSONL request stream through the batch layer"
    )
    srv.add_argument(
        "input",
        nargs="?",
        default=None,
        help="JSONL request file (one JSON object per line), or '-' for "
        "stdin; omit with --http",
    )
    srv.add_argument(
        "--http",
        action="store_true",
        help="serve over HTTP instead of a request file: POST /v1/fold, "
        "streaming POST /v1/batch, GET /healthz, GET /metrics; drains "
        "gracefully on SIGTERM",
    )
    srv.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="HTTP mode: address to bind (default 127.0.0.1)",
    )
    srv.add_argument(
        "--port",
        type=int,
        default=8642,
        metavar="N",
        help="HTTP mode: port to bind (0 picks an ephemeral port; "
        "default 8642)",
    )
    srv.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        metavar="N",
        help="HTTP mode: per-connection bound on /v1/batch requests in "
        "flight (backpressure window)",
    )
    srv.add_argument(
        "--out",
        metavar="PATH",
        help="write JSONL results to PATH instead of stdout",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="size watermark: dispatch a shape group at N requests",
    )
    srv.add_argument(
        "--max-delay",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="latency watermark: dispatch a group once its oldest request "
        "queued this long",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent batch executions",
    )
    srv.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="result-cache capacity in entries (0 disables caching)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve through N worker processes (sharded tier with "
        "admission control and self-healing); 0 uses the in-process "
        "batch tier",
    )
    srv.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="sharded tier: per-shard bound on queued requests; beyond "
        "it new arrivals are shed with a structured error",
    )
    srv.add_argument(
        "--priority",
        default=None,
        choices=PRIORITY_CLASSES,
        help="sharded tier: default admission class for requests that "
        "do not carry one (default: batch)",
    )
    srv.add_argument(
        "--stats",
        action="store_true",
        help="print the scheduler/cache summary to stderr when done",
    )
    srv.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 if any request came back as an error result",
    )

    sm = sub.add_parser("submit", help="emit one JSONL request line for 'serve'")
    sm.add_argument("seq1")
    sm.add_argument("seq2")
    sm.add_argument("--id", default="", help="request id echoed in the result")
    sm.add_argument(
        "--variant", default="hybrid-tiled", choices=ENGINES, help="program version"
    )
    sm.add_argument("--backend", metavar="NAME", help="kernel backend")
    sm.add_argument(
        "--semiring",
        default="max-plus",
        metavar="NAME",
        help="reduction algebra: 'max-plus' (default) or 'logsumexp'",
    )
    sm.add_argument(
        "--structure", action="store_true", help="also request one optimal structure"
    )
    sm.add_argument(
        "--deadline", type=float, metavar="SECONDS", help="per-request compute budget"
    )
    sm.add_argument(
        "--retries", type=int, default=0, metavar="N", help="transient retries"
    )
    sm.add_argument(
        "--fallback",
        metavar="VARIANTS",
        help="comma-separated degradation chain (e.g. 'hybrid,baseline')",
    )
    sm.add_argument(
        "--priority",
        default=None,
        choices=PRIORITY_CLASSES,
        help="admission class for the sharded tier (default: batch)",
    )
    sm.add_argument(
        "--out",
        metavar="PATH",
        help="append the request line to PATH instead of stdout",
    )
    sm.add_argument(
        "--url",
        metavar="URL",
        help="POST the request to a running gateway (e.g. "
        "http://127.0.0.1:8642) instead of printing the line; retries "
        "429/503 honoring Retry-After and prints the result object",
    )

    g = sub.add_parser(
        "golden", help="verify the golden-corpus manifest (or --regen it)"
    )
    g.add_argument(
        "--manifest",
        metavar="PATH",
        help="manifest file (default: tests/golden/manifest.json of the checkout)",
    )
    g.add_argument(
        "--variant",
        default=None,
        choices=ENGINES,
        help="engine variant to verify with (default: the manifest generator)",
    )
    g.add_argument("--backend", metavar="NAME", help="kernel backend to verify with")
    g.add_argument(
        "--semiring",
        default=None,
        metavar="NAME",
        help="verify only this pinned semiring (default: all the "
        "configuration can run)",
    )
    g.add_argument(
        "--regen",
        action="store_true",
        help="recompute and rewrite the pinned scores (refused under CI)",
    )

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("id", help=f"one of {sorted(EXPERIMENTS)} or 'all'")
    e.add_argument("--csv", metavar="DIR", help="also write <DIR>/<id>.csv")

    tn = sub.add_parser(
        "tune", help="autotune a backend knob (tiled window-block width, "
        "Four-Russians block width, or --joint generated schedule x tile)"
    )
    tn.add_argument(
        "--backend",
        choices=("tiled", "fourrussians"),
        default="tiled",
        help="which backend to tune: 'tiled' sweeps the window-block width, "
        "'fourrussians' jointly sweeps (block width q, sparsify on/off)",
    )
    tn.add_argument(
        "--joint",
        action="store_true",
        help="jointly sweep the generated kernels' (schedule, column-tile) "
        "grid and persist the winner the 'generated' backend replays; "
        "--candidates then lists tile widths (0 = untiled)",
    )
    tn.add_argument("--n", type=int, default=40, help="outer strand length")
    tn.add_argument("--m", type=int, default=40, help="inner strand length")
    tn.add_argument(
        "--threads", type=int, default=1, metavar="N", help="thread count to tune for"
    )
    tn.add_argument(
        "--candidates",
        metavar="W1,W2,...",
        help="comma-separated candidate values: window-block widths for "
        "--backend tiled, block widths q for --backend fourrussians "
        "(default: backend-specific heuristic ladder)",
    )
    tn.add_argument(
        "--repeats", type=int, default=2, metavar="N", help="timing repeats per width"
    )
    tn.add_argument(
        "--cache",
        metavar="PATH",
        help="autotune cache file (default: $BPMAX_TUNE_CACHE or "
        "~/.cache/bpmax/autotune.json)",
    )
    tn.add_argument(
        "--no-persist",
        action="store_true",
        help="benchmark only; do not write the winner to the cache file",
    )

    sub.add_parser("list", help="list experiments and engine variants")
    sub.add_parser("backends", help="list kernel backends and their availability")
    return p


def _check_backend(name: str | None) -> None:
    """One-line error for unknown backend names, before any engine work."""
    if name is None:
        return
    from .kernels import BACKENDS

    if name not in BACKENDS:
        raise BpmaxError(
            f"unknown backend {name!r}; available: {', '.join(sorted(BACKENDS))} "
            "(see 'bpmax backends')"
        )


def _check_semiring(name: str) -> str:
    """Resolve a --semiring value to its canonical engine name."""
    from .semiring import ENGINE_SEMIRINGS, get_semiring

    try:
        sr = get_semiring(name)
    except ValueError as exc:
        raise BpmaxError(str(exc)) from None
    if sr.name not in ENGINE_SEMIRINGS:
        raise BpmaxError(
            f"semiring {sr.name!r} has no engine support; "
            f"use one of {ENGINE_SEMIRINGS}"
        )
    return sr.name


def _cmd_backends() -> int:
    from .kernels import BACKENDS, DEFAULT_BACKEND, get_backend

    for name in sorted(BACKENDS):
        b = BACKENDS[name]
        if b.available:
            status = "available"
        else:
            status = f"unavailable ({b.note}); falls back to {get_backend(name).name}"
        default = "  [default]" if name == DEFAULT_BACKEND else ""
        caps = ",".join(f for f in b.CAPABILITY_FLAGS if b.capabilities.get(f))
        print(f"{name:15s} {status}{default}")
        print(f"{'':15s}   {b.description}")
        print(f"{'':15s}   capabilities: {caps or '-'}")
        print(f"{'':15s}   semirings: {','.join(b.semirings)}")
        if b.provenance:
            prov = " ".join(f"{k}={v}" for k, v in sorted(b.provenance.items()))
            print(f"{'':15s}   provenance: {prov}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .kernels import BACKENDS
    from .kernels.autotune import cache_key, heuristic_block, tune

    if args.n < 1 or args.m < 1:
        raise BpmaxError(f"--n/--m must be >= 1, got n={args.n} m={args.m}")
    if args.threads < 1:
        raise BpmaxError(f"--threads must be >= 1, got {args.threads}")
    if args.repeats < 1:
        raise BpmaxError(f"--repeats must be >= 1, got {args.repeats}")
    backend = getattr(args, "backend", "tiled")
    joint = getattr(args, "joint", False)
    if joint and backend == "fourrussians":
        raise BpmaxError(
            "--joint sweeps the generated kernels; it cannot be combined "
            "with --backend fourrussians"
        )
    if not joint and not BACKENDS[backend].available:
        raise BpmaxError(
            f"{backend} backend unavailable on this machine "
            f"({BACKENDS[backend].note})"
        )
    candidates = None
    if args.candidates:
        try:
            candidates = sorted(
                {int(w) for w in args.candidates.split(",") if w.strip()}
            )
        except ValueError as exc:
            raise BpmaxError(
                f"--candidates must be comma-separated integers: {exc}"
            ) from exc
        if joint:
            lo, hi = 0, args.m
        else:
            lo = 2 if backend == "fourrussians" else 1
            hi = args.m if backend == "fourrussians" else args.n
        if not candidates or any(w < lo or w > hi for w in candidates):
            raise BpmaxError(
                f"--candidates must be values in [{lo}, {hi}], "
                f"got {args.candidates!r}"
            )
    if joint:
        return _tune_joint(args, candidates)
    if backend == "fourrussians":
        return _tune_fourrussians(args, candidates)
    result = tune(
        args.n,
        args.m,
        threads=args.threads,
        candidates=candidates,
        repeats=args.repeats,
        path=args.cache,
        persist=not args.no_persist,
    )
    print(f"key     : {result.key}")
    print("width   wall_s")
    for wb in sorted(result.candidates):
        mark = "  <-- best" if wb == result.best_wb else ""
        print(f"{wb:5d}   {result.candidates[wb]:.4f}{mark}")
    print(f"best    : wb={result.best_wb} ({result.best_wall_s:.4f} s; "
          f"heuristic would pick {heuristic_block(args.n, args.m, args.threads)})")
    if result.cache_file:
        print(f"cache   : {result.cache_file} [{cache_key(args.n, args.m, args.threads)}]")
    else:
        print("cache   : not persisted (--no-persist)")
    return 0


def _tune_joint(args: argparse.Namespace, tiles: list[int] | None) -> int:
    from .kernels.autotune import get_generated_config, tune_joint

    try:
        result = tune_joint(
            args.n,
            args.m,
            threads=args.threads,
            tiles=tiles,
            repeats=args.repeats,
            path=args.cache,
            persist=not args.no_persist,
        )
    except ValueError as exc:
        raise BpmaxError(str(exc)) from exc
    print(f"key     : {result.key}")
    print("schedule   tile_wj   wall_s")
    for label in sorted(result.candidates):
        sched, wj = label.split("|wj")
        mark = (
            "  <-- best"
            if sched == result.best_schedule and int(wj) == result.best_wb
            else ""
        )
        print(f"{sched:10s} {int(wj):7d}   {result.candidates[label]:.4f}{mark}")
    print(
        f"best    : schedule={result.best_schedule} wj={result.best_wb} "
        f"({result.best_wall_s:.4f} s)"
    )
    if result.cache_file:
        print(f"cache   : {result.cache_file} [{result.key}]")
        sched, wj = get_generated_config(
            args.n, args.m, args.threads, path=args.cache
        )
        print(
            f"replay  : 'bpmax run --backend generated' at this size-class "
            f"now compiles schedule={sched} wj={wj} from cache"
        )
    else:
        print("cache   : not persisted (--no-persist)")
    return 0


def _tune_fourrussians(args: argparse.Namespace, candidates: list[int] | None) -> int:
    from .kernels.autotune import tune_fourrussians
    from .kernels.fourrussians_tables import heuristic_q

    try:
        result = tune_fourrussians(
            args.n,
            args.m,
            threads=args.threads,
            q_candidates=candidates,
            repeats=args.repeats,
            path=args.cache,
            persist=not args.no_persist,
        )
    except ValueError as exc:
        raise BpmaxError(str(exc)) from exc
    print(f"key     : {result.key}")
    print("q  sparsify   wall_s")
    for label in sorted(result.candidates):
        q, sp = label.split("|")
        q_val, sp_val = int(q[1:]), bool(int(sp[2:]))
        mark = (
            "  <-- best"
            if q_val == result.best_wb and sp_val == result.best_sparsify
            else ""
        )
        print(
            f"{q_val:2d} {'on ' if sp_val else 'off':>8s}  "
            f"{result.candidates[label]:.4f}{mark}"
        )
    d = result.key.rsplit("d", 1)[-1]
    print(
        f"best    : q={result.best_wb} sparsify="
        f"{'on' if result.best_sparsify else 'off'} "
        f"({result.best_wall_s:.4f} s; heuristic would pick "
        f"q={heuristic_q(args.m, int(d))})"
    )
    if result.cache_file:
        print(f"cache   : {result.cache_file} [{result.key}]")
    else:
        print("cache   : not persisted (--no-persist)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    seq1, seq2 = args.seq1, args.seq2
    if args.fasta:
        from .rna.sequence import read_fasta

        records = read_fasta(seq1)
        if len(records) < 2:
            raise BpmaxError(
                f"FASTA file {seq1!r} must contain at least two records, "
                f"found {len(records)}"
            )
        seq1, seq2 = records[0], records[1]
    elif seq2 is None:
        raise BpmaxError("run needs two sequences (or --fasta FILE)")
    if args.deadline is not None and args.deadline <= 0:
        raise BpmaxError(f"--deadline must be positive, got {args.deadline:g}")
    fallback: tuple[str, ...] = ()
    if args.fallback:
        fallback = tuple(v.strip() for v in args.fallback.split(",") if v.strip())
        for v in fallback:
            if v not in ENGINES:
                raise BpmaxError(
                    f"unknown fallback variant {v!r}; use one of {ENGINES}"
                )
    _check_backend(args.backend)
    semiring = _check_semiring(args.semiring)
    if semiring != "max-plus":
        if args.variant == "baseline":
            raise BpmaxError(
                "the baseline engine is max-plus only; pick a vectorized "
                f"variant for --semiring {semiring}"
            )
        if args.structure:
            raise BpmaxError(
                "--structure follows max-plus argmax decisions; it is "
                f"undefined for --semiring {semiring}"
            )
    if args.threads < 1:
        raise BpmaxError(f"--threads must be >= 1, got {args.threads}")
    engine_kwargs: dict = {}
    if args.variant != "baseline":
        if args.backend is not None:
            engine_kwargs["backend"] = args.backend
        if args.threads > 1:
            engine_kwargs["threads"] = args.threads
    elif args.backend is not None or args.threads > 1:
        raise BpmaxError("--backend/--threads do not apply to the baseline engine")
    want_metrics = args.metrics or args.metrics_out is not None
    tracer = None
    with ExitStack() as stack:
        if args.trace:
            from .observe import tracing

            tracer = stack.enter_context(tracing())
        result = bpmax(
            seq1,
            seq2,
            variant=args.variant,
            semiring=semiring,
            structure=args.structure,
            fallback=fallback,
            checkpoint=args.checkpoint,
            resume=args.resume,
            deadline=args.deadline,
            metrics=want_metrics,
            **engine_kwargs,
        )
    if tracer is not None:
        tracer.save(args.trace)
    print(f"score   : {result.score:g}")
    print(f"variant : {result.variant}")
    if result.degraded_from:
        print(f"degraded: {' -> '.join((*result.degraded_from, result.variant))}")
    if result.resumed_windows:
        print(f"resumed : {result.resumed_windows} windows from checkpoint")
    if result.structure is not None:
        db1, db2 = result.structure.dotbracket()
        print(f"strand1 : {str(seq1).upper().replace('T', 'U')}")
        print(f"          {db1}")
        print(f"strand2 : {str(seq2).upper().replace('T', 'U')}")
        print(f"          {db2}")
        print(f"inter   : {result.structure.inter}")
    if result.report is not None:
        if args.metrics_out:
            result.report.save(args.metrics_out)
            print(f"report  : saved to {args.metrics_out}")
        print()
        print(result.report.render())
    if tracer is not None:
        print(f"trace   : {len(tracer.records())} records saved to {args.trace}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .core.windowed import scan_windows_served

    _check_backend(args.backend)
    semiring = _check_semiring(args.semiring)
    if args.cache_size < 0:
        raise BpmaxError(f"--cache-size must be >= 0, got {args.cache_size}")
    result = scan_windows_served(
        args.query,
        args.target,
        window=args.window,
        stride=args.stride,
        variant=args.variant,
        semiring=semiring,
        backend=args.backend,
        cache=args.cache_size,
    )
    cached = sum(1 for h in result.hits if h.cached)
    print(f"{len(result.hits)} windows of length {result.window}, "
          f"stride {result.stride} ({cached} served from cache)")
    print("start  score  gain")
    for hit in result.top(args.top):
        print(f"{hit.start:5d}  {hit.score:5.1f}  {hit.gain:5.1f}")
    best = result.best
    print(f"best window: start {best.start} (gain {best.gain:g})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.request import parse_request_line
    from .serve.scheduler import BatchScheduler

    if args.max_batch < 1:
        raise BpmaxError(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_delay < 0:
        raise BpmaxError(f"--max-delay must be >= 0, got {args.max_delay:g}")
    if args.workers < 1:
        raise BpmaxError(f"--workers must be >= 1, got {args.workers}")
    if args.cache_size < 0:
        raise BpmaxError(f"--cache-size must be >= 0, got {args.cache_size}")
    if args.shards < 0:
        raise BpmaxError(f"--shards must be >= 0, got {args.shards}")
    if args.queue_limit < 1:
        raise BpmaxError(f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.http:
        if args.input is not None:
            raise BpmaxError(
                "--http serves over sockets; drop the request-file argument"
            )
        return _cmd_serve_http(args)
    if args.input is None:
        raise BpmaxError("serve needs a JSONL request file (or --http)")

    if args.input == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.input) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise BpmaxError(f"cannot read request file {args.input!r}: {exc}") from exc
    requests = []
    for lineno, line in enumerate(lines, start=1):
        req = parse_request_line(line, lineno)
        if req is not None:
            requests.append(req)
    if not requests:
        raise BpmaxError(f"no requests found in {args.input!r}")

    if args.shards > 0:
        from .serve.shard import ShardScheduler

        with ShardScheduler(
            shards=args.shards,
            queue_limit=args.queue_limit,
            cache_size=args.cache_size,
            default_priority=args.priority or "batch",
        ) as sched:
            results = sched.serve_all(requests)
            stats_dict = sched.stats
    else:
        with BatchScheduler(
            max_batch=args.max_batch,
            max_delay_s=args.max_delay,
            workers=args.workers,
            cache=args.cache_size,
        ) as sched:
            results = sched.serve_all(requests)
            stats_dict = sched.stats.as_dict()
    out_lines = [r.to_json() for r in results]
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(out_lines) + "\n")
    else:
        for line in out_lines:
            print(line)
    errors = sum(1 for r in results if not r.ok)
    if args.stats:
        import json as _json

        print(f"serve: {_json.dumps(stats_dict)}", file=sys.stderr)
    if errors and args.strict:
        raise BpmaxError(f"{errors} of {len(results)} requests failed (--strict)")
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import json as _json
    import signal
    import threading

    from .serve.http import HttpGateway
    from .serve.scheduler import BatchScheduler

    if not 0 <= args.port <= 65535:
        raise BpmaxError(f"--port must be in [0, 65535], got {args.port}")
    if args.max_inflight < 1:
        raise BpmaxError(f"--max-inflight must be >= 1, got {args.max_inflight}")

    if args.shards > 0:
        from .serve.shard import ShardScheduler

        sched = ShardScheduler(
            shards=args.shards,
            queue_limit=args.queue_limit,
            cache_size=args.cache_size,
            default_priority=args.priority or "batch",
        )
        tier = f"{args.shards} shard(s)"
    else:
        sched = BatchScheduler(
            max_batch=args.max_batch,
            max_delay_s=args.max_delay,
            workers=args.workers,
            cache=args.cache_size,
        )
        tier = f"in-process batch tier ({args.workers} worker(s))"
    try:
        gateway = HttpGateway(
            sched,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            own_scheduler=True,
        ).start()
    except OSError as exc:
        sched.close()
        raise BpmaxError(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from exc
    # the subprocess e2e test parses this line for the bound port, so
    # it must be the first stdout line and flushed before blocking
    print(f"bpmax gateway listening on {gateway.url()} ({tier})", flush=True)

    stop = threading.Event()
    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("bpmax gateway draining", file=sys.stderr, flush=True)
    metrics = gateway.metrics()
    gateway.close()
    if args.stats:
        print(f"serve: {_json.dumps(metrics)}", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    _check_backend(args.backend)
    semiring = _check_semiring(args.semiring)
    if args.retries < 0:
        raise BpmaxError(f"--retries must be >= 0, got {args.retries}")
    if args.deadline is not None and args.deadline <= 0:
        raise BpmaxError(f"--deadline must be positive, got {args.deadline:g}")
    request: dict = {"seq1": args.seq1, "seq2": args.seq2}
    if args.id:
        request["id"] = args.id
    if args.variant != "hybrid-tiled":
        request["variant"] = args.variant
    if args.backend is not None:
        request["backend"] = args.backend
    if semiring != "max-plus":
        request["semiring"] = semiring
    if args.structure:
        request["structure"] = True
    if args.deadline is not None:
        request["deadline"] = args.deadline
    if args.retries:
        request["retries"] = args.retries
    if args.fallback:
        chain = [v.strip() for v in args.fallback.split(",") if v.strip()]
        for v in chain:
            if v not in ENGINES:
                raise BpmaxError(
                    f"unknown fallback variant {v!r}; use one of {ENGINES}"
                )
        request["fallback"] = chain
    if args.priority:
        request["priority"] = args.priority
    line = _json.dumps(request, separators=(",", ":"))
    if args.url:
        if args.out:
            raise BpmaxError("--url submits over HTTP; drop --out")
        from .serve.client import GatewayClient

        result = GatewayClient(args.url).fold(request)
        print(_json.dumps(result, separators=(",", ":")))
        return 0
    if args.out:
        with open(args.out, "a") as fh:
            fh.write(line + "\n")
    else:
        print(line)
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from . import golden

    _check_backend(args.backend)
    semirings = None
    if args.semiring is not None:
        semirings = (_check_semiring(args.semiring),)
    if args.regen:
        if args.variant is not None or args.backend is not None:
            raise BpmaxError(
                "--regen always pins with the generator variant; "
                "drop --variant/--backend"
            )
        path = golden.regen_manifest(args.manifest)
        print(f"golden : regenerated {len(golden.GOLDEN_CASES)} case(s) and "
              f"{len(golden.ERROR_CASES)} error case(s)")
        print(f"manifest: {path}")
        return 0
    variant = args.variant or golden.GENERATOR_VARIANT
    problems = golden.verify_manifest(args.manifest, variant=variant,
                                      backend=args.backend, semirings=semirings)
    label = variant + (f"+{args.backend}" if args.backend else "")
    if semirings:
        label += f" [{semirings[0]}]"
    if problems:
        for p in problems:
            print(f"MISMATCH: {p}", file=sys.stderr)
        raise BpmaxError(
            f"golden corpus: {len(problems)} mismatch(es) with {label} "
            "(regen deliberately with 'bpmax golden --regen' if intended)"
        )
    print(f"golden : {len(golden.GOLDEN_CASES)} case(s) and "
          f"{len(golden.ERROR_CASES)} error case(s) conform ({label})")
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "golden":
        return _cmd_golden(args)
    if args.command == "fold":
        score, db = fold(args.seq)
        print(f"score : {score:g}")
        print(args.seq.upper().replace("T", "U"))
        print(db)
        return 0
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "report":
        from .observe.report import RunReport

        try:
            report = RunReport.load(args.file)
        except (OSError, ValueError, KeyError) as exc:
            raise BpmaxError(f"cannot load report {args.file!r}: {exc}") from exc
        print(report.render())
        return 0
    if args.command == "experiment":
        names = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
        for name in names:
            result = run_experiment(name)
            print(result.render())
            print()
            if args.csv:
                from pathlib import Path

                out = Path(args.csv)
                out.mkdir(parents=True, exist_ok=True)
                result.save_csv(out / f"{name}.csv")
        return 0
    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("engine variants:", ", ".join(ENGINES))
        return 0
    if args.command == "backends":
        return _cmd_backends()
    if args.command == "tune":
        return _cmd_tune(args)
    return 1  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BpmaxError as exc:
        if args.debug:
            raise
        print(f"bpmax: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
