"""Structured exception hierarchy of the BPMax stack.

Every failure the system can recover from (or report cleanly) derives
from :class:`BpmaxError`, so callers — the CLI boundary, the fallback
chain, the distributed retry loops — can catch one base class.  Each
subclass additionally derives from the closest builtin so pre-existing
``except ValueError`` / ``except RuntimeError`` call sites keep working.
"""

from __future__ import annotations

__all__ = [
    "BpmaxError",
    "InvalidSequenceError",
    "EngineFailure",
    "DeadlineExceeded",
    "CheckpointError",
    "MessageLost",
    "RankFailure",
    "AdmissionRejected",
    "WorkerFailure",
    "RequestCancelled",
]


class BpmaxError(Exception):
    """Base class of every structured BPMax failure."""


class InvalidSequenceError(BpmaxError, ValueError):
    """A strand contains non-nucleotide characters or is empty."""


class EngineFailure(BpmaxError, RuntimeError):
    """An engine crashed mid-run (real bug or injected fault).

    Parameters
    ----------
    message: human-readable description.
    variant: engine program-version name, when known.
    window: the outer window ``(i1, j1)`` being computed, when known.
    """

    def __init__(
        self,
        message: str,
        variant: str | None = None,
        window: tuple[int, int] | None = None,
    ) -> None:
        detail = message
        if variant is not None:
            detail += f" [variant={variant}]"
        if window is not None:
            detail += f" [window={window}]"
        super().__init__(detail)
        self.variant = variant
        self.window = window


class DeadlineExceeded(BpmaxError, TimeoutError):
    """A cooperative :class:`~repro.robust.deadline.Deadline` expired."""


class CheckpointError(BpmaxError, RuntimeError):
    """A checkpoint file is unreadable, stale, or from another input."""


class MessageLost(BpmaxError, RuntimeError):
    """A simulated MPI message was dropped in flight (retryable)."""


class RankFailure(BpmaxError, RuntimeError):
    """A simulated MPI rank died, or an operation touched a dead rank."""


class AdmissionRejected(BpmaxError, RuntimeError):
    """The serving tier shed a request at admission (overload protection).

    Raised-or-reported *before* any compute is spent: the queue bound of
    the request's priority class is full, or its deadline already cannot
    be met.  Clients should back off and retry; the request was never
    partially executed.
    """


class WorkerFailure(BpmaxError, RuntimeError):
    """A shard worker process died or hung while holding a request.

    Reported only once the bounded re-route budget is exhausted — a
    single worker death is normally absorbed by respawn + re-route and
    never surfaces to the client.
    """


class RequestCancelled(BpmaxError, RuntimeError):
    """A queued request was cancelled by scheduler shutdown.

    The structured resolution of a still-queued request when a scheduler
    is closed with ``cancel=True`` — the future resolves with this error
    instead of hanging forever or silently computing after shutdown.
    """
