"""Bounded retry with exponential backoff and deterministic jitter.

The jitter source is a seeded :class:`numpy.random.Generator` and the
sleep function is injectable, so tests (and the discrete-event cluster
simulator) can exercise the full retry schedule without wall-clock
delays and with bit-reproducible behaviour.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import event
from .errors import BpmaxError, DeadlineExceeded

T = TypeVar("T")

__all__ = ["retry"]


def retry(
    fn: Callable[[], T],
    attempts: int = 3,
    backoff: float = 0.05,
    jitter: float = 0.0,
    retry_on: tuple[type[BaseException], ...] = (BpmaxError,),
    seed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn()`` up to ``attempts`` times; re-raise the last failure.

    Between attempt ``k`` and ``k+1`` (0-based) the helper sleeps
    ``backoff * 2**k * (1 + jitter * u)`` seconds with ``u`` drawn
    uniformly from ``[0, 1)`` by a generator seeded with ``seed`` —
    deterministic for a fixed seed.  :class:`DeadlineExceeded` is never
    retried: an expired budget cannot un-expire.

    Parameters
    ----------
    fn: zero-argument callable (wrap arguments in a lambda/partial).
    attempts: total attempts, >= 1.
    backoff: base delay in seconds (0 disables sleeping).
    jitter: fractional jitter amplitude added to each delay.
    retry_on: exception types worth retrying; everything else propagates.
    on_retry: optional callback ``(attempt_index, exception)`` invoked
        before each re-attempt (logging/metrics hook).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if backoff < 0 or jitter < 0:
        raise ValueError("backoff and jitter must be non-negative")
    rng = np.random.default_rng(seed)
    for attempt in range(attempts):
        try:
            return fn()
        except DeadlineExceeded:
            raise
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            event("retry", attempt=attempt, error=type(exc).__name__)
            counters = _metrics_active()
            if counters is not None:
                counters.retries += 1
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = backoff * (2.0**attempt)
            if jitter > 0:
                delay *= 1.0 + jitter * float(rng.random())
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
