"""Checkpoint/resume for partially-filled F tables.

Snapshots are taken at **outer-diagonal granularity**: a checkpoint
always contains every window of the outer diagonals ``0 .. D`` for some
``D`` (the *completed prefix*).  Any engine traversal order — diagonal
or bottom-up — only ever reads windows of strictly shorter outer spans,
so a resumed run that pre-loads a full diagonal prefix and skips those
windows produces a bit-identical table.

The on-disk format is a single ``.npz``:

* ``__version`` — format version (mismatch => :class:`CheckpointError`);
* ``__digest`` — SHA-256 of the run's inputs (stale/foreign checkpoints
  are rejected, never silently resumed);
* ``__n``/``__m``/``__prefix``/``__variant`` — shape + provenance;
* ``w{i1}_{j1}`` — the inner matrix of each completed window.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save never
corrupts the previous snapshot — the whole point of checkpointing.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import event
from .errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.reference import BpmaxInputs
    from ..core.tables import FTable

__all__ = ["CHECKPOINT_VERSION", "CheckpointManager", "inputs_digest"]

CHECKPOINT_VERSION = 1


def inputs_digest(inputs: "BpmaxInputs") -> str:
    """SHA-256 over the precomputed tables identifying one BPMax run.

    Two runs share a digest iff they have the same sequences *and*
    scoring model (both are fully determined by the score/S tables).
    """
    h = hashlib.sha256()
    h.update(f"bpmax:{inputs.n}:{inputs.m}:".encode())
    for arr in (inputs.score1, inputs.score2, inputs.iscore, inputs.s1, inputs.s2):
        h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return h.hexdigest()


class CheckpointManager:
    """Tracks window completion and snapshots diagonal prefixes.

    Engines call :meth:`mark_done` after each window and
    :meth:`maybe_save` at diagonal boundaries; a snapshot is written
    whenever the completed prefix has advanced by at least ``every``
    outer diagonals since the last save (and always on the final
    diagonal).

    Parameters
    ----------
    path: snapshot file location (conventionally ``*.npz``).
    inputs: the run's precomputed tables (digested for staleness checks).
    variant: program-version name recorded for provenance.
    every: minimum diagonal advance between snapshots, >= 1.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        inputs: "BpmaxInputs",
        variant: str = "",
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.variant = variant
        self.every = every
        self.n = inputs.n
        self.m = inputs.m
        self.digest = inputs_digest(inputs)
        self.saves = 0
        self._done: set[tuple[int, int]] = set()
        self._per_diag = [0] * self.n
        self._saved_prefix = -1

    # -- progress tracking ---------------------------------------------------

    @property
    def done(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._done)

    def mark_done(self, i1: int, j1: int) -> None:
        """Record that window ``(i1, j1)`` is fully computed."""
        if not 0 <= i1 <= j1 < self.n:
            raise ValueError(f"window ({i1}, {j1}) out of range for n={self.n}")
        if (i1, j1) in self._done:
            return
        self._done.add((i1, j1))
        self._per_diag[j1 - i1] += 1

    def prefix_diagonal(self) -> int:
        """Largest ``D`` with diagonals ``0..D`` fully complete (-1: none)."""
        for d in range(self.n):
            if self._per_diag[d] != self.n - d:
                return d - 1
        return self.n - 1

    # -- snapshotting --------------------------------------------------------

    def maybe_save(self, table: "FTable") -> bool:
        """Snapshot if the completed prefix advanced far enough."""
        prefix = self.prefix_diagonal()
        if prefix <= self._saved_prefix:
            return False
        if prefix < self.n - 1 and prefix - self._saved_prefix < self.every:
            return False
        self.save(table, prefix)
        return True

    def save(self, table: "FTable", prefix: int | None = None) -> None:
        """Write diagonals ``0..prefix`` atomically to :attr:`path`."""
        if prefix is None:
            prefix = self.prefix_diagonal()
        if prefix < 0:
            raise CheckpointError("nothing to checkpoint: no complete diagonal")
        payload: dict[str, np.ndarray] = {
            "__version": np.int64(CHECKPOINT_VERSION),
            "__digest": np.str_(self.digest),
            "__variant": np.str_(self.variant),
            "__n": np.int64(self.n),
            "__m": np.int64(self.m),
            "__prefix": np.int64(prefix),
        }
        for d in range(prefix + 1):
            for i1 in range(self.n - d):
                payload[f"w{i1}_{i1 + d}"] = table.inner(i1, i1 + d)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, self.path)
        self._saved_prefix = prefix
        self.saves += 1
        nbytes = self.path.stat().st_size
        event("checkpoint.save", path=str(self.path), prefix=prefix, bytes=nbytes)
        counters = _metrics_active()
        if counters is not None:
            counters.checkpoint_saves += 1
            counters.checkpoint_bytes += nbytes

    def load(self, table: "FTable") -> frozenset[tuple[int, int]]:
        """Validate :attr:`path`, fill ``table``, return resumed windows.

        Raises :class:`CheckpointError` on a missing/foreign/stale file;
        the caller decides whether that is fatal or means "start fresh".
        """
        if not self.path.exists():
            raise CheckpointError(f"no checkpoint at {self.path}")
        try:
            with np.load(self.path, allow_pickle=False) as data:
                contents = {k: data[k] for k in data.files}
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path}: {exc}") from exc
        if "__version" not in contents:
            raise CheckpointError(f"{self.path} is not a BPMax checkpoint")
        version = int(contents["__version"])
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        digest = str(contents["__digest"])
        if digest != self.digest:
            raise CheckpointError(
                f"stale checkpoint {self.path}: input digest mismatch "
                f"({digest[:12]}… != {self.digest[:12]}…)"
            )
        if int(contents["__n"]) != self.n or int(contents["__m"]) != self.m:
            raise CheckpointError(
                f"checkpoint shape ({int(contents['__n'])}, {int(contents['__m'])}) "
                f"does not match inputs ({self.n}, {self.m})"
            )
        prefix = int(contents["__prefix"])
        resumed: set[tuple[int, int]] = set()
        for d in range(prefix + 1):
            for i1 in range(self.n - d):
                key = f"w{i1}_{i1 + d}"
                if key not in contents:
                    raise CheckpointError(
                        f"checkpoint {self.path} is missing window {key}"
                    )
                table.set_inner(i1, i1 + d, contents[key])
                self.mark_done(i1, i1 + d)
                resumed.add((i1, i1 + d))
        self._saved_prefix = prefix
        return frozenset(resumed)

    def __repr__(self) -> str:
        return (
            f"CheckpointManager(path={str(self.path)!r}, every={self.every}, "
            f"prefix={self.prefix_diagonal()}, saves={self.saves})"
        )
