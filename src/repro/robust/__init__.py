"""Fault-tolerant execution layer for BPMax.

Long O(N^3 M^3) runs at the paper's 16 x 2500 workload scale — and the
conclusion's cluster-scale MPI plan — need more than fast kernels: they
need to *survive*.  This package provides the building blocks the rest
of the stack threads through every layer:

* :mod:`repro.robust.errors` — the structured exception hierarchy
  (:class:`BpmaxError` and friends) every layer raises;
* :mod:`repro.robust.retry` — the ``retry(attempts, backoff, jitter)``
  helper with deterministic, seedable jitter;
* :mod:`repro.robust.deadline` — a cooperative :class:`Deadline` budget
  that engines check at diagonal boundaries;
* :mod:`repro.robust.checkpoint` — versioned ``.npz`` snapshots of the
  partially-filled F table at outer-diagonal granularity, guarded by an
  input digest so stale checkpoints are rejected;
* :mod:`repro.robust.faults` — a deterministic fault-injection harness
  (:class:`FaultPlan`) targeting engine windows, pool workers and
  simulated MPI ranks/messages, used by tests and
  ``benchmarks/bench_fault_recovery.py``.
"""

from .checkpoint import CHECKPOINT_VERSION, CheckpointManager, inputs_digest
from .deadline import Deadline
from .errors import (
    AdmissionRejected,
    BpmaxError,
    CheckpointError,
    DeadlineExceeded,
    EngineFailure,
    InvalidSequenceError,
    MessageLost,
    RankFailure,
    RequestCancelled,
    WorkerFailure,
)
from .faults import FaultEvent, FaultPlan
from .retry import retry

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "inputs_digest",
    "Deadline",
    "BpmaxError",
    "CheckpointError",
    "DeadlineExceeded",
    "EngineFailure",
    "InvalidSequenceError",
    "MessageLost",
    "RankFailure",
    "AdmissionRejected",
    "WorkerFailure",
    "RequestCancelled",
    "FaultEvent",
    "FaultPlan",
    "retry",
]
