"""Cooperative compute budgets.

A :class:`Deadline` is a soft wall-clock budget that long-running loops
poll at natural boundaries (engines at outer-diagonal boundaries, the
distributed executor at wavefront boundaries).  Polling keeps the
abstraction cooperative — no signals, no threads — which is exactly what
a worker inside a batch service or an MPI rank can afford.  The clock is
injectable so tests can drive it deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

from .errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget of ``seconds``, started at construction.

    Parameters
    ----------
    seconds: budget length; ``None`` or ``inf`` means unlimited.
    clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self._clock = clock
        self._start = clock()
        self._budget = float("inf") if seconds is None else float(seconds)

    @property
    def budget_s(self) -> float:
        return self._budget

    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() < 0

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            at = f" at {where}" if where else ""
            raise DeadlineExceeded(
                f"deadline of {self._budget:g}s exceeded{at} "
                f"(elapsed {self.elapsed():.3f}s)"
            )

    def __repr__(self) -> str:
        return f"Deadline(budget={self._budget:g}s, remaining={self.remaining():.3f}s)"
