"""Deterministic fault injection across every execution layer.

One :class:`FaultPlan` instance describes *all* the faults of one run —
engine-window crashes/slowdowns, pool-worker crashes, simulated-MPI
message drops and rank deaths.  The consumers poll it at their injection
points:

* engines call :meth:`engine_window` before computing a window;
* :class:`~repro.parallel.pool.ParallelRunner` calls :meth:`pool_task`
  before running a mapped task;
* :class:`~repro.parallel.mpi.SimComm` calls :meth:`drop_message` on
  every send;
* :class:`~repro.core.distributed.DistributedBPMax` calls
  :meth:`rank_dies` at each wavefront boundary.

Determinism contract: for a fixed construction (seed + fault specs) and
a fixed call sequence, every decision and the :attr:`events` log are
bit-identical — the property the fault-injection tests assert.  Scripted
crash faults fire **once** (recorded in :attr:`fired`), modelling a
transient fault: the retried/resumed/fallback execution proceeds past
it, which is what lets recovery be tested end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import event
from .errors import EngineFailure

__all__ = ["FaultEvent", "FaultPlan"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (for logs and determinism tests)."""

    kind: str  # "crash-window" | "slow-window" | "crash-worker" | "drop"
    # | "rank-death" | "shard-kill" | "shard-hang"
    site: tuple[int, ...]  # the targeted coordinates


class FaultPlan:
    """A seeded, scripted set of faults for one run.

    Parameters
    ----------
    seed: seed of the generator behind rate-based decisions.
    crash_windows: outer windows ``(i1, j1)`` whose computation raises
        :class:`EngineFailure` the first time it is attempted.
    slow_windows: outer windows slowed by ``slow_delay_s`` (returned to
        the engine, which sleeps cooperatively).
    slow_delay_s: injected delay per slow window, seconds.
    worker_crashes: task indices at which a pool worker raises.
    message_drops: ``(source, dest)`` pairs; each occurrence drops one
        message on that edge (scripted, deterministic).
    message_drop_rate: probability in ``[0, 1]`` that any send is
        dropped (seeded; retries re-roll).
    rank_deaths: ``(rank, diagonal)`` pairs — the rank dies at the start
        of that outer-diagonal wavefront.
    shard_kills: ``(shard, ordinal)`` pairs — the shard worker process
        hard-exits (``os._exit``) just before serving its ``ordinal``-th
        request (1-based), modelling an OOM kill / segfault.  Polled by
        :meth:`shard_fault`; the serving tier strips a shard's kill
        faults when it respawns the worker (fires-once convention).
    shard_hangs: ``(shard, ordinal)`` pairs — the shard worker wedges
        (sleeps forever) instead of serving that request, modelling a
        livelock; the parent's hang detector must kill and respawn it.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_windows: Iterable[tuple[int, int]] = (),
        slow_windows: Iterable[tuple[int, int]] = (),
        slow_delay_s: float = 0.0,
        worker_crashes: Iterable[int] = (),
        message_drops: Iterable[tuple[int, int]] = (),
        message_drop_rate: float = 0.0,
        rank_deaths: Iterable[tuple[int, int]] = (),
        shard_kills: Iterable[tuple[int, int]] = (),
        shard_hangs: Iterable[tuple[int, int]] = (),
    ) -> None:
        if not 0.0 <= message_drop_rate <= 1.0:
            raise ValueError(
                f"message_drop_rate must be in [0, 1], got {message_drop_rate}"
            )
        if slow_delay_s < 0:
            raise ValueError(f"slow_delay_s must be >= 0, got {slow_delay_s}")
        self.seed = seed
        self.crash_windows = frozenset(tuple(w) for w in crash_windows)
        self.slow_windows = frozenset(tuple(w) for w in slow_windows)
        self.slow_delay_s = float(slow_delay_s)
        self.worker_crashes = frozenset(int(i) for i in worker_crashes)
        self.message_drop_rate = float(message_drop_rate)
        self.rank_deaths = frozenset((int(r), int(d)) for r, d in rank_deaths)
        self.shard_kills = frozenset((int(s), int(o)) for s, o in shard_kills)
        self.shard_hangs = frozenset((int(s), int(o)) for s, o in shard_hangs)
        self._drop_budget: dict[tuple[int, int], int] = {}
        for edge in message_drops:
            key = (int(edge[0]), int(edge[1]))
            self._drop_budget[key] = self._drop_budget.get(key, 0) + 1
        self._rng = np.random.default_rng(seed)
        self.fired: set[tuple] = set()
        self.events: list[FaultEvent] = []

    def _record(self, kind: str, site: tuple[int, ...]) -> None:
        """Log one injection in the plan, the tracer and the counters."""
        self.events.append(FaultEvent(kind, site))
        event("fault." + kind, site=site)
        counters = _metrics_active()
        if counters is not None:
            counters.faults_injected += 1

    # -- engine windows ------------------------------------------------------

    def engine_window(self, i1: int, j1: int) -> float:
        """Poll before computing window ``(i1, j1)``.

        Raises :class:`EngineFailure` for a (not-yet-fired) crash fault;
        otherwise returns the injected delay in seconds (0 = healthy).
        """
        key = ("crash-window", i1, j1)
        if (i1, j1) in self.crash_windows and key not in self.fired:
            self.fired.add(key)
            self._record("crash-window", (i1, j1))
            raise EngineFailure("injected crash", window=(i1, j1))
        if (i1, j1) in self.slow_windows:
            self._record("slow-window", (i1, j1))
            return self.slow_delay_s
        return 0.0

    # -- pool workers --------------------------------------------------------

    def pool_task(self, index: int) -> None:
        """Poll before running mapped task ``index`` on a pool worker."""
        key = ("crash-worker", index)
        if index in self.worker_crashes and key not in self.fired:
            self.fired.add(key)
            self._record("crash-worker", (index,))
            raise EngineFailure(f"injected pool-worker crash at task {index}")

    # -- simulated MPI -------------------------------------------------------

    def drop_message(self, source: int, dest: int) -> bool:
        """Decide whether the next ``source -> dest`` send is dropped."""
        budget = self._drop_budget.get((source, dest), 0)
        if budget > 0:
            self._drop_budget[(source, dest)] = budget - 1
            self._record("drop", (source, dest))
            return True
        if self.message_drop_rate > 0 and self._rng.random() < self.message_drop_rate:
            self._record("drop", (source, dest))
            return True
        return False

    def rank_dies(self, rank: int, diagonal: int) -> bool:
        """Poll at a wavefront boundary: does ``rank`` die here?"""
        key = ("rank-death", rank, diagonal)
        if (rank, diagonal) in self.rank_deaths and key not in self.fired:
            self.fired.add(key)
            self._record("rank-death", (rank, diagonal))
            return True
        return False

    # -- shard workers -------------------------------------------------------

    def shard_fault(self, shard: int, ordinal: int) -> str | None:
        """Poll before a shard worker serves its ``ordinal``-th request.

        Returns ``"kill"`` (the worker should hard-exit), ``"hang"``
        (the worker should wedge), or ``None`` (healthy).  Like every
        scripted fault, each site fires at most once per plan instance;
        the serving tier additionally drops a shard's kill/hang faults
        from the configuration it hands the *respawned* worker, so the
        re-routed request succeeds on retry.
        """
        for kind, sites in (("shard-kill", self.shard_kills),
                            ("shard-hang", self.shard_hangs)):
            key = (kind, shard, ordinal)
            if (shard, ordinal) in sites and key not in self.fired:
                self.fired.add(key)
                self._record(kind, (shard, ordinal))
                return "kill" if kind == "shard-kill" else "hang"
        return None

    def without_shard(self, shard: int) -> "FaultPlan":
        """A copy of this plan with ``shard``'s kill/hang faults removed.

        Used when respawning a worker: the injected fault modelled a
        transient failure, so the replacement process must not replay it
        (the fires-once convention, across a process boundary).
        """
        plan = FaultPlan(
            seed=self.seed,
            crash_windows=self.crash_windows,
            slow_windows=self.slow_windows,
            slow_delay_s=self.slow_delay_s,
            worker_crashes=self.worker_crashes,
            message_drop_rate=self.message_drop_rate,
            rank_deaths=self.rank_deaths,
            shard_kills=[s for s in self.shard_kills if s[0] != shard],
            shard_hangs=[s for s in self.shard_hangs if s[0] != shard],
        )
        plan._drop_budget = dict(self._drop_budget)
        return plan

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, crashes={len(self.crash_windows)}, "
            f"slow={len(self.slow_windows)}, workers={len(self.worker_crashes)}, "
            f"drops={sum(self._drop_budget.values())}"
            f"+rate={self.message_drop_rate:g}, "
            f"rank_deaths={len(self.rank_deaths)}, "
            f"shard_faults={len(self.shard_kills) + len(self.shard_hangs)}, "
            f"events={len(self.events)})"
        )
