"""Polyhedral domains: affine constraint systems over named indices.

A :class:`Domain` is the set of integer points satisfying a conjunction of
affine constraints, parameterised by symbolic sizes (e.g. ``N``, ``M``).
It supports membership tests, exact Fourier-Motzkin projection, per-level
bound computation and lexicographic enumeration — everything the mini
code generator and the dependence checker need.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence

from .affine import AffineExpr

__all__ = ["Constraint", "Domain", "EmptyDomainError"]


class EmptyDomainError(ValueError):
    """Raised when an operation requires a non-empty domain."""


_REL_RE = re.compile(r"(<=|>=|==|<|>|=)")


@dataclass(frozen=True)
class Constraint:
    """``expr >= 0`` (kind ``'ge'``) or ``expr == 0`` (kind ``'eq'``)."""

    expr: AffineExpr
    kind: str = "ge"

    def __post_init__(self) -> None:
        if self.kind not in ("ge", "eq"):
            raise ValueError(f"constraint kind must be 'ge' or 'eq', got {self.kind!r}")

    @staticmethod
    def parse(text: str) -> list["Constraint"]:
        """Parse one (possibly chained) relational expression.

        Supports ``a <= b <= c`` chains and all of ``<=, <, >=, >, ==, =``.
        Returns one constraint per relation in the chain.
        """
        parts = _REL_RE.split(text)
        if len(parts) < 3 or len(parts) % 2 == 0:
            raise ValueError(f"cannot parse constraint {text!r}")
        out: list[Constraint] = []
        for i in range(0, len(parts) - 2, 2):
            lhs = AffineExpr.parse(parts[i])
            op = parts[i + 1]
            rhs = AffineExpr.parse(parts[i + 2])
            if op == "<=":
                out.append(Constraint(rhs - lhs, "ge"))
            elif op == "<":
                out.append(Constraint(rhs - lhs - 1, "ge"))
            elif op == ">=":
                out.append(Constraint(lhs - rhs, "ge"))
            elif op == ">":
                out.append(Constraint(lhs - rhs - 1, "ge"))
            elif op in ("==", "="):
                out.append(Constraint(lhs - rhs, "eq"))
        return out

    def holds(self, env: Mapping[str, int | Fraction]) -> bool:
        v = self.expr.evaluate(env)
        return v == 0 if self.kind == "eq" else v >= 0

    def substitute(self, bindings: Mapping[str, AffineExpr | int]) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.kind)

    def __str__(self) -> str:
        return f"{self.expr} {'==' if self.kind == 'eq' else '>='} 0"


def _eliminate(constraints: list[Constraint], name: str) -> list[Constraint]:
    """Fourier-Motzkin elimination of ``name`` (rational relaxation).

    Equalities involving ``name`` are used for exact substitution first.
    """
    # exact substitution through an equality if one mentions the variable
    for idx, c in enumerate(constraints):
        if c.kind == "eq" and c.expr.coeff(name) != 0:
            a = c.expr.coeff(name)
            # name == -(expr - a*name)/a
            rest = c.expr + AffineExpr(coeffs={name: -a})
            repl = rest * Fraction(-1, 1) * (Fraction(1) / a)
            others = constraints[:idx] + constraints[idx + 1 :]
            return [o.substitute({name: repl}) for o in others]

    lowers: list[tuple[AffineExpr, Fraction]] = []  # a*name + e >= 0, a > 0
    uppers: list[tuple[AffineExpr, Fraction]] = []  # a < 0 (stored as -a)
    free: list[Constraint] = []
    for c in constraints:
        a = c.expr.coeff(name)
        if a == 0:
            free.append(c)
            continue
        rest = c.expr + AffineExpr(coeffs={name: -a})
        if a > 0:
            lowers.append((rest, a))
        else:
            uppers.append((rest, -a))
    for lo_rest, lo_a in lowers:
        for up_rest, up_b in uppers:
            # name >= -lo_rest/lo_a and name <= up_rest/up_b
            combined = lo_rest * up_b + up_rest * lo_a
            free.append(Constraint(combined, "ge"))
    return free


@dataclass(frozen=True)
class Domain:
    """Integer points of an affine constraint system.

    Parameters
    ----------
    names: ordered index names (the enumeration/lexicographic order).
    constraints: conjunction of affine constraints over indices + params.
    params: symbolic parameter names appearing in the constraints.
    """

    names: tuple[str, ...]
    constraints: tuple[Constraint, ...]
    params: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        known = set(self.names) | set(self.params)
        for c in self.constraints:
            unknown = c.expr.names - known
            if unknown:
                raise ValueError(
                    f"constraint {c} mentions unknown names {sorted(unknown)}"
                )

    # -- construction ----------------------------------------------------

    @staticmethod
    def parse(text: str, params: Sequence[str] = ()) -> "Domain":
        """Parse ``"{i,j | 0<=i<N && i<=j}"`` (ISL-flavoured) syntax."""
        s = text.strip()
        if s.startswith("{") and s.endswith("}"):
            s = s[1:-1]
        if "|" in s:
            head, body = s.split("|", 1)
        else:
            head, body = s, ""
        names = tuple(t.strip() for t in head.split(",") if t.strip())
        constraints: list[Constraint] = []
        if body.strip():
            for clause in re.split(r"&&|\band\b", body):
                clause = clause.strip()
                if clause:
                    constraints.extend(Constraint.parse(clause))
        return Domain(names=names, constraints=tuple(constraints), params=tuple(params))

    def with_constraints(self, extra: Iterable[Constraint]) -> "Domain":
        return Domain(self.names, self.constraints + tuple(extra), self.params)

    def intersect(self, other: "Domain") -> "Domain":
        """Conjunction of constraints.

        ``other`` may be over a subset of this domain's indices (e.g. a
        case-branch guard on two of four indices); its constraints are
        then interpreted in this domain's index space.
        """
        if not set(other.names) <= set(self.names):
            raise ValueError(
                f"cannot intersect: {other.names} is not a subset of {self.names}"
            )
        params = tuple(dict.fromkeys(self.params + other.params))
        return Domain(self.names, self.constraints + other.constraints, params)

    @property
    def dim(self) -> int:
        return len(self.names)

    # -- queries ----------------------------------------------------------

    def contains(self, point: Sequence[int], params: Mapping[str, int]) -> bool:
        """Is the integer ``point`` (ordered as ``self.names``) in the set?"""
        if len(point) != self.dim:
            raise ValueError(f"point arity {len(point)} != domain dim {self.dim}")
        env = {**params, **dict(zip(self.names, point))}
        return all(c.holds(env) for c in self.constraints)

    def _eliminated_systems(self) -> list[list[Constraint]]:
        """systems[t] = constraints with names[t+1:] eliminated (FM)."""
        systems: list[list[Constraint]] = [list(self.constraints)]
        current = list(self.constraints)
        for name in reversed(self.names[1:]):
            current = _eliminate(current, name)
            systems.append(current)
        systems.reverse()  # systems[t] constrains names[:t+1]
        return systems

    def level_bounds(
        self,
        level: int,
        env: Mapping[str, int | Fraction],
        systems: list[list[Constraint]] | None = None,
    ) -> tuple[int, int] | None:
        """Integer [lo, hi] range of ``names[level]`` given outer bindings.

        ``env`` must bind parameters and ``names[:level]``.  Returns None
        when the rational relaxation is empty at this level.
        """
        if systems is None:
            systems = self._eliminated_systems()
        name = self.names[level]
        lo: Fraction | None = None
        hi: Fraction | None = None
        for c in systems[level]:
            a = c.expr.coeff(name)
            rest = (c.expr + AffineExpr(coeffs={name: -a})).evaluate(env)
            if c.kind == "eq":
                if a == 0:
                    if rest != 0:
                        return None
                    continue
                v = -rest / a
                lo = v if lo is None or v > lo else lo
                hi = v if hi is None or v < hi else hi
            elif a > 0:
                v = -rest / a
                lo = v if lo is None or v > lo else lo
            elif a < 0:
                v = rest / (-a)
                hi = v if hi is None or v < hi else hi
            else:
                if rest < 0:
                    return None
        if lo is None or hi is None:
            raise EmptyDomainError(
                f"index {name!r} is unbounded in domain {self}"
            )
        ilo, ihi = math.ceil(lo), math.floor(hi)
        return (ilo, ihi) if ilo <= ihi else None

    def points(self, params: Mapping[str, int]) -> Iterator[tuple[int, ...]]:
        """Lexicographic enumeration of all integer points."""
        systems = self._eliminated_systems()
        env: dict[str, int | Fraction] = dict(params)

        def scan(level: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if level == self.dim:
                if all(c.holds(env) for c in self.constraints):
                    yield prefix
                return
            rng = self.level_bounds(level, env, systems)
            if rng is None:
                return
            name = self.names[level]
            for v in range(rng[0], rng[1] + 1):
                env[name] = v
                yield from scan(level + 1, prefix + (v,))
            env.pop(name, None)

        yield from scan(0, ())

    def count(self, params: Mapping[str, int]) -> int:
        """Number of integer points (by enumeration)."""
        return sum(1 for _ in self.points(params))

    def is_empty(self, params: Mapping[str, int]) -> bool:
        return next(iter(self.points(params)), None) is None

    def bounding_box(
        self, params: Mapping[str, int]
    ) -> list[tuple[int, int]]:
        """Per-index [lo, hi] ranges of the rational relaxation."""
        box: list[tuple[int, int]] = []
        for i, name in enumerate(self.names):
            others = [n for n in self.names if n != name]
            cons = list(self.constraints)
            for other in others:
                cons = _eliminate(cons, other)
            dummy = Domain((name,), tuple(cons), self.params)
            rng = dummy.level_bounds(0, dict(params), [cons])
            if rng is None:
                raise EmptyDomainError(f"domain empty under {params}")
            box.append(rng)
        return box

    def project_out(self, name: str) -> "Domain":
        """Existential projection (rational FM relaxation)."""
        if name not in self.names:
            raise KeyError(name)
        return Domain(
            tuple(n for n in self.names if n != name),
            tuple(_eliminate(list(self.constraints), name)),
            self.params,
        )

    def __str__(self) -> str:
        body = " && ".join(str(c) for c in self.constraints)
        return f"{{{', '.join(self.names)} | {body}}}"
