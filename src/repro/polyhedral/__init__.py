"""Polyhedral substrate: the mini-AlphaZ framework.

Affine expressions and maps, polyhedral domains with exact Fourier-Motzkin
projection, multi-dimensional affine schedules, dependence legality
checking, rectangular tiling, the mini-Alpha equational language and two
code generators (sequential demand-driven and schedule-driven).
"""

from .affine import AffineExpr, AffineMap, const, var
from .dependence import Dependence, Violation, check_all, check_legality
from .domain import Constraint, Domain, EmptyDomainError
from .schedule import Schedule, lex_compare, lex_less
from .tiling import TileSpec, tile_graph, tile_iter, tile_point, tiling_legal
from .transformations import (
    change_of_basis,
    permute_schedule,
    skew_schedule,
    to_alphabets,
)

__all__ = [
    "AffineExpr",
    "AffineMap",
    "const",
    "var",
    "Dependence",
    "Violation",
    "check_all",
    "check_legality",
    "Constraint",
    "Domain",
    "EmptyDomainError",
    "Schedule",
    "lex_compare",
    "lex_less",
    "TileSpec",
    "tile_graph",
    "tile_iter",
    "tile_point",
    "tiling_legal",
    "change_of_basis",
    "permute_schedule",
    "skew_schedule",
    "to_alphabets",
]
