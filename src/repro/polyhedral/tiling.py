"""Rectangular tiling of iteration bands and tile dependence graphs.

The paper tiles the inner ``(i2, k2, j2)`` band of the R0 kernel (Fig. 8)
with ``j2`` untiled, and Phase III isolates the tiled band in an Alpha
subsystem.  This module provides:

* :func:`tile_point` / :func:`tile_iter` — map iteration points to tile
  coordinates and enumerate a tile's contents;
* :class:`TileSpec` — a tile shape over named dimensions (0 = untiled);
* :func:`tile_graph` — build the inter-tile dependence DAG induced by a
  set of dependence vectors, consumed by the wavefront simulator
  (:mod:`repro.parallel.wavefront`);
* :func:`tiling_legal` — the classic legality test: tiling a band is valid
  iff no dependence component within the band is made negative across
  tiles ("forward-only" dependences after skewing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx

__all__ = ["TileSpec", "tile_point", "tile_iter", "tile_graph", "tiling_legal"]


@dataclass(frozen=True)
class TileSpec:
    """Tile extents per dimension; an extent of 0 leaves that dim untiled."""

    names: tuple[str, ...]
    extents: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "extents", tuple(int(e) for e in self.extents))
        if len(self.names) != len(self.extents):
            raise ValueError("names and extents must have equal length")
        if any(e < 0 for e in self.extents):
            raise ValueError(f"tile extents must be >= 0, got {self.extents}")

    def effective(self, sizes: Sequence[int]) -> tuple[int, ...]:
        """Extents with 0 replaced by the full dimension size."""
        if len(sizes) != len(self.extents):
            raise ValueError("sizes arity mismatch")
        return tuple(
            size if e == 0 else e for e, size in zip(self.extents, sizes)
        )


def tile_point(point: Sequence[int], spec: TileSpec, sizes: Sequence[int]) -> tuple[int, ...]:
    """Tile coordinate containing ``point``."""
    eff = spec.effective(sizes)
    if len(point) != len(eff):
        raise ValueError("point arity mismatch")
    return tuple(p // e for p, e in zip(point, eff))


def tile_iter(
    tile: Sequence[int], spec: TileSpec, sizes: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Enumerate the iteration points of one (rectangular) tile."""
    eff = spec.effective(sizes)

    def scan(d: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        if d == len(eff):
            yield prefix
            return
        lo = tile[d] * eff[d]
        hi = min(lo + eff[d], sizes[d])
        for v in range(lo, hi):
            yield from scan(d + 1, prefix + (v,))

    yield from scan(0, ())


def tile_graph(
    sizes: Sequence[int],
    spec: TileSpec,
    dep_vectors: Iterable[Sequence[int]],
) -> nx.DiGraph:
    """Inter-tile dependence DAG for a rectangular iteration space.

    Nodes are tile coordinates; an edge t1 -> t2 means some iteration in t2
    depends on an iteration in t1 via one of the (constant) dependence
    vectors.  Self-loops are dropped (intra-tile dependences are honoured
    by sequential execution inside a tile).
    """
    eff = spec.effective(sizes)
    n_tiles = tuple(-(-s // e) for s, e in zip(sizes, eff))
    g = nx.DiGraph()

    def tiles() -> Iterator[tuple[int, ...]]:
        def scan(d: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if d == len(n_tiles):
                yield prefix
                return
            for v in range(n_tiles[d]):
                yield from scan(d + 1, prefix + (v,))

        yield from scan(0, ())

    for t in tiles():
        g.add_node(t)
    vecs = [tuple(int(x) for x in v) for v in dep_vectors]
    for t in list(g.nodes):
        # a dependence vector d can cross at most one tile boundary per dim
        for vec in vecs:
            # source tile of an iteration at the "low corner" of t shifted by -d
            deltas = set()
            for corner_scale in (0, 1):
                src = tuple(
                    (t[i] * eff[i] + corner_scale * (eff[i] - 1) - vec[i]) // eff[i]
                    for i in range(len(eff))
                )
                deltas.add(src)
            for src in deltas:
                if src != t and all(0 <= src[i] < n_tiles[i] for i in range(len(src))):
                    g.add_edge(src, t)
    if not nx.is_directed_acyclic_graph(g):
        raise ValueError(
            f"tiling {spec.extents} is not legal for the given dependences "
            "(inter-tile cycle)"
        )
    return g


def tiling_legal(dep_vectors: Iterable[Sequence[int]], band: Sequence[int]) -> bool:
    """Classic rectangular-tiling legality for the selected ``band`` dims.

    Legal iff every dependence vector is lexicographically non-negative
    when restricted to the band (i.e. the band is "fully permutable":
    all components >= 0).
    """
    for vec in dep_vectors:
        if any(vec[d] < 0 for d in band):
            return False
    return True
