"""Program transformations: ``Normalize`` and ``NormalizeReduction``.

Mirrors the two basic AlphaZ transformations the paper's compilation
scripts invoke before any mapping directives:

* :func:`normalize` — put expressions in normal form: fold constants,
  flatten ``max``/``min`` chains into right-leaning form, collapse
  single-branch cases, drop ``x + 0`` / ``x * 1`` units;
* :func:`normalize_reductions` — hoist every ``Reduce`` that is not the
  direct child of an equation into a fresh local variable, so each
  reduction can be given its own space-time map (the paper's schedules in
  Tables II-V assign separate schedules to R0..R4 precisely because the
  program is in this form).
"""

from __future__ import annotations

from dataclasses import replace

from ..affine import AffineMap, var
from .ast import BINOPS, BinOp, Case, Const, Equation, Expr, IndexExpr, Reduce, VarRef
from .system import AlphaSystem, VarDecl

__all__ = ["normalize", "normalize_reductions", "normalize_expr"]


def normalize_expr(expr: Expr) -> Expr:
    """Constant-fold and simplify one expression tree."""
    if isinstance(expr, BinOp):
        left = normalize_expr(expr.left)
        right = normalize_expr(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(BINOPS[expr.op](left.value, right.value))
        if expr.op == "+":
            if isinstance(left, Const) and left.value == 0:
                return right
            if isinstance(right, Const) and right.value == 0:
                return left
        if expr.op == "*":
            if isinstance(left, Const) and left.value == 1:
                return right
            if isinstance(right, Const) and right.value == 1:
                return left
        return BinOp(expr.op, left, right)
    if isinstance(expr, Case):
        branches = tuple((d, normalize_expr(e)) for d, e in expr.branches)
        if len(branches) == 1:
            # single total branch: keep the case only if it restricts
            dom, inner = branches[0]
            if not dom.constraints:
                return inner
        return Case(branches)
    if isinstance(expr, Reduce):
        return replace(expr, body=normalize_expr(expr.body))
    return expr


def normalize(system: AlphaSystem) -> AlphaSystem:
    """Return a new system with every equation body normalized."""
    out = AlphaSystem(
        name=system.name,
        params=system.params,
        inputs=list(system.inputs),
        outputs=list(system.outputs),
        locals=list(system.locals),
        subsystems=dict(system.subsystems),
    )
    for eq in system.equations:
        out.equations.append(replace(eq, body=normalize_expr(eq.body)))
    out.validate()
    return out


def _hoist(
    expr: Expr,
    eq: Equation,
    system: AlphaSystem,
    fresh: list[int],
    top_level: bool,
) -> Expr:
    """Recursively replace non-top-level reductions by local variables."""
    if isinstance(expr, Reduce):
        body = _hoist(expr.body, eq, system, fresh, top_level=False)
        red = replace(expr, body=body)
        if top_level:
            return red
        fresh[0] += 1
        name = f"_red_{eq.var}_{fresh[0]}"
        # the hoisted variable lives over the equation's domain
        system.locals.append(VarDecl(name=name, domain=eq.domain))
        system.equations.append(Equation(var=name, domain=eq.domain, body=red))
        access = AffineMap(
            inputs=eq.domain.names,
            exprs=tuple(var(n) for n in eq.domain.names),
        )
        return VarRef(name=name, access=access)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _hoist(expr.left, eq, system, fresh, False),
            _hoist(expr.right, eq, system, fresh, False),
        )
    if isinstance(expr, Case):
        return Case(
            tuple(
                (d, _hoist(e, eq, system, fresh, top_level)) for d, e in expr.branches
            )
        )
    return expr


def normalize_reductions(system: AlphaSystem) -> AlphaSystem:
    """Hoist nested reductions into fresh local variables.

    After this pass, every ``Reduce`` node is the direct child of an
    equation (possibly under a top-level ``Case``), matching AlphaZ's
    NormalizeReduction contract.
    """
    out = AlphaSystem(
        name=system.name,
        params=system.params,
        inputs=list(system.inputs),
        outputs=list(system.outputs),
        locals=list(system.locals),
        subsystems=dict(system.subsystems),
    )
    fresh = [0]
    new_eqs: list[Equation] = []
    for eq in system.equations:
        body = _hoist(eq.body, eq, out, fresh, top_level=True)
        new_eqs.append(replace(eq, body=body))
    # hoisted equations were appended to out.equations during _hoist
    out.equations = out.equations + new_eqs
    out.validate()
    return out
