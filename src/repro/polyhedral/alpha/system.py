"""Alpha systems: declarations + equations, with structural validation.

An :class:`AlphaSystem` mirrors an ``alphabets`` program (paper §III-C):
parameter domain, input/output/local variable declarations (each a name
plus a polyhedral domain) and one equation per non-input variable.
Subsystems (Phase III) are modelled by systems referencing each other
through :attr:`AlphaSystem.subsystems`; integration of subsystem results
is performed by the caller, as the paper itself does ("Both systems are
integrated manually").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from ..dependence import Dependence
from ..domain import Domain
from ..affine import AffineMap
from .ast import Case, Equation, Expr, Reduce, VarRef, free_vars, walk

__all__ = ["VarDecl", "AlphaSystem", "SystemError"]


class SystemError(ValueError):
    """Raised for structurally invalid Alpha systems."""


@dataclass(frozen=True)
class VarDecl:
    """A typed variable over a polyhedral domain."""

    name: str
    domain: Domain
    dtype: str = "float"

    def __str__(self) -> str:
        return f"{self.dtype} {self.name} {self.domain}"


@dataclass
class AlphaSystem:
    """A system of affine recurrence equations.

    Attributes
    ----------
    name: system name.
    params: symbolic size parameters (e.g. ``("N", "M")``).
    inputs/outputs/locals: variable declarations.
    equations: one per output/local variable.
    subsystems: systems this one invokes via use-equations.
    """

    name: str
    params: tuple[str, ...]
    inputs: list[VarDecl] = field(default_factory=list)
    outputs: list[VarDecl] = field(default_factory=list)
    locals: list[VarDecl] = field(default_factory=list)
    equations: list[Equation] = field(default_factory=list)
    subsystems: dict[str, "AlphaSystem"] = field(default_factory=dict)

    # -- lookups -----------------------------------------------------------

    @property
    def declarations(self) -> dict[str, VarDecl]:
        return {
            d.name: d for d in (*self.inputs, *self.outputs, *self.locals)
        }

    def declaration(self, name: str) -> VarDecl:
        try:
            return self.declarations[name]
        except KeyError:
            raise SystemError(f"undeclared variable {name!r} in system {self.name}")

    def equation_for(self, var: str) -> Equation:
        for eq in self.equations:
            if eq.var == var:
                return eq
        raise SystemError(f"no equation defines {var!r} in system {self.name}")

    def is_input(self, name: str) -> bool:
        return any(d.name == name for d in self.inputs)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`SystemError`."""
        decls = self.declarations
        names = [d.name for d in (*self.inputs, *self.outputs, *self.locals)]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise SystemError(f"duplicate declarations {dup} in system {self.name}")

        defined = {eq.var for eq in self.equations}
        for d in (*self.outputs, *self.locals):
            if d.name not in defined:
                raise SystemError(
                    f"variable {d.name!r} has no defining equation in {self.name}"
                )
        for d in self.inputs:
            if d.name in defined:
                raise SystemError(f"input {d.name!r} must not be defined")
        for eq in self.equations:
            if eq.var not in decls:
                raise SystemError(f"equation defines undeclared {eq.var!r}")
            decl = decls[eq.var]
            if tuple(eq.domain.names) != tuple(decl.domain.names):
                raise SystemError(
                    f"equation for {eq.var!r} uses indices {eq.domain.names}, "
                    f"declaration uses {decl.domain.names}"
                )
            for ref in (e for e in walk(eq.body) if isinstance(e, VarRef)):
                if ref.name not in decls:
                    raise SystemError(
                        f"equation for {eq.var!r} reads undeclared {ref.name!r}"
                    )
                target = decls[ref.name]
                if ref.access.dim_out != target.domain.dim:
                    raise SystemError(
                        f"access {ref} has arity {ref.access.dim_out}; "
                        f"{ref.name!r} has dimension {target.domain.dim}"
                    )

    # -- analysis -------------------------------------------------------------

    def variable_graph(self) -> nx.DiGraph:
        """Directed graph: edge u -> v when v's equation reads u."""
        g = nx.DiGraph()
        for name in self.declarations:
            g.add_node(name)
        for eq in self.equations:
            for used in free_vars(eq.body):
                g.add_edge(used, eq.var)
        return g

    def topological_variables(self) -> list[str]:
        """Variables in an evaluation order ignoring self-recurrences.

        Self-loops (a variable reading itself at earlier points, the norm
        for DP tables) are removed before sorting; cycles across *distinct*
        variables are grouped conservatively by condensation order.
        """
        g = self.variable_graph()
        g.remove_edges_from(nx.selfloop_edges(g))
        cond = nx.condensation(g)
        order: list[str] = []
        for scc in nx.topological_sort(cond):
            order.extend(sorted(cond.nodes[scc]["members"]))
        return order

    def dependences(self) -> list[Dependence]:
        """Extract one :class:`Dependence` per variable read in each body.

        The dependence domain spans the equation indices (restricted to the
        branch domain for case-branches) extended with reduction indices;
        the producer map is the read's access function and the consumer map
        projects onto the equation indices.
        """
        out: list[Dependence] = []

        from ..affine import var as _var

        def visit(eq: Equation, expr: Expr, ctx_domain: Domain, counter: list[int]) -> None:
            if isinstance(expr, VarRef):
                z_names = ctx_domain.names
                missing = set(expr.access.inputs) - set(z_names)
                if missing:
                    raise SystemError(
                        f"access {expr} uses indices {sorted(missing)} not in "
                        f"scope {z_names}"
                    )
                # the consumer instance is the full dependence-domain point:
                # for reads inside a reduction body this includes the
                # reduction indices, matching the accumulation-body schedule
                consumer_map = AffineMap(
                    inputs=z_names,
                    exprs=tuple(_var(n) for n in z_names),
                )
                producer_map = AffineMap(
                    inputs=z_names,
                    exprs=tuple(expr.access.exprs),
                )
                counter[0] += 1
                out.append(
                    Dependence(
                        name=f"{eq.var}#{counter[0]}<-{expr.name}",
                        consumer=eq.var,
                        producer=expr.name,
                        domain=ctx_domain,
                        consumer_map=consumer_map,
                        producer_map=producer_map,
                    )
                )
            elif isinstance(expr, Case):
                for dom, branch in expr.branches:
                    visit(eq, branch, ctx_domain.intersect(dom), counter)
            elif isinstance(expr, Reduce):
                visit(eq, expr.body, expr.domain, counter)
            elif hasattr(expr, "left"):
                visit(eq, expr.left, ctx_domain, counter)  # type: ignore[attr-defined]
                visit(eq, expr.right, ctx_domain, counter)  # type: ignore[attr-defined]

        for eq in self.equations:
            visit(eq, eq.body, eq.domain, [0])
        return out

    def __str__(self) -> str:
        lines = [f"affine {self.name} {{{', '.join(self.params)}}}"]
        for label, decls in (
            ("input", self.inputs),
            ("output", self.outputs),
            ("local", self.locals),
        ):
            if decls:
                lines.append(label)
                lines.extend(f"  {d};" for d in decls)
        lines.append("let")
        lines.extend(f"  {eq};" for eq in self.equations)
        return "\n".join(lines)
