"""Demand-driven interpreter for mini-Alpha systems.

Evaluates an output variable at a point by memoized recursion over the
equations — the executable *semantics* of the language, independent of any
schedule.  Every generated or hand-optimized implementation is tested
against this oracle.

Inputs are supplied as NumPy arrays indexed directly by the access tuple
(negative or out-of-domain reads raise), or as Python callables.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..domain import Domain
from .ast import BINOPS, REDUCE_INIT, BinOp, Case, Const, Equation, Expr, IndexExpr, Reduce, VarRef
from .system import AlphaSystem, SystemError

__all__ = ["Interpreter", "EvaluationError"]


class EvaluationError(RuntimeError):
    """Raised when evaluation demands an undefined value."""


InputValue = "np.ndarray | Callable[..., float]"


class Interpreter:
    """Evaluate system outputs by demand-driven memoized recursion.

    Parameters
    ----------
    system: a validated :class:`AlphaSystem`.
    params: binding of every system parameter to an integer.
    inputs: binding of every input variable to an array or callable.
    """

    def __init__(
        self,
        system: AlphaSystem,
        params: Mapping[str, int],
        inputs: Mapping[str, "np.ndarray | Callable[..., float]"],
    ) -> None:
        system.validate()
        self.system = system
        self.params = dict(params)
        missing = set(system.params) - set(self.params)
        if missing:
            raise SystemError(f"unbound parameters {sorted(missing)}")
        self.inputs = dict(inputs)
        missing_in = {d.name for d in system.inputs} - set(self.inputs)
        if missing_in:
            raise SystemError(f"unbound inputs {sorted(missing_in)}")
        self._memo: dict[tuple[str, tuple[int, ...]], float] = {}
        self._in_progress: set[tuple[str, tuple[int, ...]]] = set()
        self._equations = {eq.var: eq for eq in system.equations}

    # -- public API -------------------------------------------------------

    def value(self, var: str, *point: int) -> float:
        """Value of ``var`` at ``point``."""
        return self._eval_var(var, tuple(int(p) for p in point))

    def table(self, var: str) -> np.ndarray:
        """Dense array of ``var`` over its domain's bounding box.

        Points outside the domain hold NaN.
        """
        decl = self.system.declaration(var)
        box = decl.domain.bounding_box(self.params)
        if any(lo < 0 for lo, _ in box):
            raise EvaluationError(
                f"table() requires a non-negative domain, got box {box}"
            )
        shape = tuple(hi + 1 for _, hi in box)
        out = np.full(shape, np.nan, dtype=np.float64)
        for pt in decl.domain.points(self.params):
            out[pt] = self._eval_var(var, pt)
        return out

    # -- evaluation -------------------------------------------------------

    def _eval_var(self, var: str, point: tuple[int, ...]) -> float:
        key = (var, point)
        if key in self._memo:
            return self._memo[key]
        if var in self.inputs:
            value = self._read_input(var, point)
            self._memo[key] = value
            return value
        if key in self._in_progress:
            raise EvaluationError(
                f"cyclic dependence: {var}{point} transitively needs itself"
            )
        eq = self._equations.get(var)
        if eq is None:
            raise EvaluationError(f"no equation or input for {var!r}")
        if not eq.domain.contains(point, self.params):
            raise EvaluationError(
                f"{var}{point} demanded outside its domain {eq.domain}"
            )
        self._in_progress.add(key)
        try:
            env = {**self.params, **dict(zip(eq.domain.names, point))}
            value = self._eval_expr(eq.body, env)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = value
        return value

    def _read_input(self, var: str, point: tuple[int, ...]) -> float:
        src = self.inputs[var]
        if callable(src):
            return float(src(*point))
        arr = np.asarray(src)
        if any(p < 0 or p >= s for p, s in zip(point, arr.shape)):
            raise EvaluationError(
                f"input {var!r} read out of bounds at {point} (shape {arr.shape})"
            )
        return float(arr[point])

    def _eval_expr(self, expr: Expr, env: dict[str, int]) -> float:
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, IndexExpr):
            return float(expr.expr.evaluate(env))
        if isinstance(expr, VarRef):
            target = tuple(int(v) for v in expr.access.apply_env(env))
            return self._eval_var(expr.name, target)
        if isinstance(expr, BinOp):
            return BINOPS[expr.op](
                self._eval_expr(expr.left, env), self._eval_expr(expr.right, env)
            )
        if isinstance(expr, Case):
            point_env = env
            for dom, branch in expr.branches:
                pt = tuple(point_env[n] for n in dom.names)
                if dom.contains(pt, self.params):
                    return self._eval_expr(branch, env)
            raise EvaluationError(
                f"no case branch matches environment {env} in {expr}"
            )
        if isinstance(expr, Reduce):
            acc = REDUCE_INIT[expr.op]
            op = BINOPS[expr.op]
            outer = tuple(env[n] for n in expr.domain.names[: -len(expr.extra)])
            found = False
            for pt in self._reduction_points(expr.domain, outer):
                inner_env = dict(env)
                inner_env.update(zip(expr.extra, pt))
                acc = op(acc, self._eval_expr(expr.body, inner_env))
                found = True
            if not found:
                # empty reduction: identity element (AlphaZ semantics)
                return REDUCE_INIT[expr.op]
            return acc
        raise TypeError(f"cannot evaluate {type(expr).__name__}")

    def _reduction_points(self, domain: Domain, outer: tuple[int, ...]):
        """Points of the reduction's extra indices given outer bindings."""
        n_outer = len(outer)
        env: dict[str, int] = {**self.params, **dict(zip(domain.names, outer))}
        systems = domain._eliminated_systems()

        def scan(level: int, prefix: tuple[int, ...]):
            if level == domain.dim:
                if all(c.holds(env) for c in domain.constraints):
                    yield prefix[n_outer:]
                return
            rng = domain.level_bounds(level, env, systems)
            if rng is None:
                return
            name = domain.names[level]
            for v in range(rng[0], rng[1] + 1):
                env[name] = v
                yield from scan(level + 1, prefix + (v,))

        # outer levels are pinned: walk them as singleton ranges
        def scan_pinned(level: int, prefix: tuple[int, ...]):
            if level < n_outer:
                env[domain.names[level]] = outer[level]
                yield from scan_pinned(level + 1, prefix + (outer[level],))
            else:
                yield from scan(level, prefix)

        yield from scan_pinned(0, ())
