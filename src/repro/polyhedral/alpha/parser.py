"""Parser for a small ``alphabets``-like concrete syntax.

Grammar (informal)::

    system   := 'affine' NAME '{' params [ '|' constraints ] '}'
                sections 'let' equation*
    sections := ('input' | 'output' | 'local') decl* ...
    decl     := TYPE NAME domain ';'
    domain   := '{' names '|' constraints '}'
    equation := NAME '[' names ']' '=' expr ';'
    expr     := additive
    additive := mult (('+' | '-') mult)*
    mult     := primary ('*' primary)*
    primary  := NUMBER
              | 'reduce' '(' OP ',' '[' names ']' 'in' domain ',' expr ')'
              | 'case' '{' (domain ':' expr ';')+ '}'
              | ('max'|'min') '(' expr ',' expr ')'
              | NAME '[' affine_list ']'          -- variable read
              | NAME                              -- index value or 0-d read
              | '(' expr ')'

Matches the matrix-multiplication example of the paper (Algorithm 1)
modulo the explicit reduction domain, which our AST requires.
"""

from __future__ import annotations

import re

from ..affine import AffineExpr, AffineMap, var
from ..domain import Domain
from .ast import BinOp, Case, Const, Expr, IndexExpr, Reduce, VarRef
from .system import AlphaSystem, Equation, VarDecl

__all__ = ["parse_system", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed mini-Alpha source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>\d+(\.\d+)?)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|&&|->|[{}()\[\],;:|=<>+\-*])
    """,
    re.VERBOSE,
)


def _tokenize(src: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if not m:
            raise ParseError(f"unexpected character {src[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup != "ws" and m.group() and not m.group().startswith("//"):
            if m.lastgroup == "ws":
                continue
            tokens.append(m.group())
    return tokens


class _Parser:
    KEYWORDS = {"affine", "input", "output", "local", "let", "reduce", "case", "in"}

    def __init__(self, src: str) -> None:
        self.tokens = _tokenize(src)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r} at token {self.pos}")

    def at(self, tok: str) -> bool:
        return self.peek() == tok

    # -- grammar -------------------------------------------------------------

    def parse(self) -> AlphaSystem:
        self.expect("affine")
        name = self.next()
        params, _ = self._param_domain()
        system = AlphaSystem(name=name, params=params)
        section = None
        while self.peek() in ("input", "output", "local"):
            section = self.next()
            target = {
                "input": system.inputs,
                "output": system.outputs,
                "local": system.locals,
            }[section]
            while self.peek() not in ("input", "output", "local", "let", None):
                target.append(self._decl(params))
        self.expect("let")
        while self.peek() is not None:
            system.equations.append(self._equation(system, params))
        system.validate()
        return system

    def _param_domain(self) -> tuple[tuple[str, ...], str]:
        self.expect("{")
        names: list[str] = []
        while not self.at("|") and not self.at("}"):
            names.append(self.next())
            if self.at(","):
                self.next()
        constraint_text = ""
        if self.at("|"):
            self.next()
            # parameter constraints are recorded but unused structurally
            depth = 1
            parts: list[str] = []
            while depth > 0:
                tok = self.next()
                if tok == "{":
                    depth += 1
                elif tok == "}":
                    depth -= 1
                    if depth == 0:
                        break
                parts.append(tok)
            constraint_text = " ".join(parts)
            return tuple(names), constraint_text
        self.expect("}")
        return tuple(names), constraint_text

    def _domain(self, params: tuple[str, ...]) -> Domain:
        self.expect("{")
        parts: list[str] = []
        depth = 1
        while True:
            tok = self.next()
            if tok == "{":
                depth += 1
            elif tok == "}":
                depth -= 1
                if depth == 0:
                    break
            parts.append(tok)
        return Domain.parse("{" + " ".join(parts) + "}", params=params)

    def _decl(self, params: tuple[str, ...]) -> VarDecl:
        dtype = self.next()
        name = self.next()
        domain = self._domain(params)
        self.expect(";")
        return VarDecl(name=name, domain=domain, dtype=dtype)

    def _equation(self, system: AlphaSystem, params: tuple[str, ...]) -> Equation:
        varname = self.next()
        self.expect("[")
        indices: list[str] = []
        while not self.at("]"):
            indices.append(self.next())
            if self.at(","):
                self.next()
        self.expect("]")
        self.expect("=")
        decl = system.declaration(varname)
        if tuple(indices) != tuple(decl.domain.names):
            raise ParseError(
                f"equation indices {indices} must match declaration "
                f"{decl.domain.names} for {varname!r}"
            )
        scope = tuple(indices)
        body = self._expr(system, params, scope)
        self.expect(";")
        return Equation(var=varname, domain=decl.domain, body=body)

    # -- expressions ------------------------------------------------------------

    def _expr(self, system, params, scope) -> Expr:
        left = self._mult(system, params, scope)
        while self.peek() in ("+", "-"):
            op = self.next()
            right = self._mult(system, params, scope)
            left = BinOp(op, left, right)
        return left

    def _mult(self, system, params, scope) -> Expr:
        left = self._primary(system, params, scope)
        while self.at("*"):
            self.next()
            right = self._primary(system, params, scope)
            left = BinOp("*", left, right)
        return left

    def _affine(self, scope) -> AffineExpr:
        """Parse an affine expression until ',' or ']' at depth 0."""
        parts: list[str] = []
        depth = 0
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unterminated affine expression")
            if depth == 0 and tok in (",", "]"):
                break
            if tok == "(":
                depth += 1
            elif tok == ")":
                if depth == 0:
                    break
                depth -= 1
            parts.append(self.next())
        if not parts:
            raise ParseError("empty affine expression")
        return AffineExpr.parse("".join(parts))

    def _primary(self, system, params, scope) -> Expr:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of expression")
        if re.fullmatch(r"\d+(\.\d+)?", tok):
            self.next()
            return Const(float(tok))
        if tok == "(":
            self.next()
            inner = self._expr(system, params, scope)
            self.expect(")")
            return inner
        if tok in ("max", "min"):
            self.next()
            self.expect("(")
            left = self._expr(system, params, scope)
            self.expect(",")
            right = self._expr(system, params, scope)
            self.expect(")")
            return BinOp(tok, left, right)
        if tok == "reduce":
            self.next()
            self.expect("(")
            op = self.next()
            if op == "+":
                pass
            self.expect(",")
            self.expect("[")
            extra: list[str] = []
            while not self.at("]"):
                extra.append(self.next())
                if self.at(","):
                    self.next()
            self.expect("]")
            self.expect("in")
            domain = self._domain(params)
            self.expect(",")
            body = self._expr(system, params, tuple(domain.names))
            self.expect(")")
            return Reduce(op=op, extra=tuple(extra), domain=domain, body=body)
        if tok == "case":
            self.next()
            self.expect("{")
            branches: list[tuple[Domain, Expr]] = []
            while not self.at("}"):
                dom = self._domain(params)
                self.expect(":")
                branch = self._expr(system, params, scope)
                self.expect(";")
                branches.append((dom, branch))
            self.expect("}")
            return Case(branches=tuple(branches))
        # identifier: variable read or index value
        name = self.next()
        if self.at("["):
            self.next()
            exprs: list[AffineExpr] = []
            while not self.at("]"):
                exprs.append(self._affine(scope))
                if self.at(","):
                    self.next()
            self.expect("]")
            return VarRef(name=name, access=AffineMap(inputs=scope, exprs=tuple(exprs)))
        if name in scope or name in params:
            return IndexExpr(var(name))
        # 0-dimensional variable read
        return VarRef(name=name, access=AffineMap(inputs=scope, exprs=()))


def parse_system(src: str) -> AlphaSystem:
    """Parse mini-Alpha source text into a validated :class:`AlphaSystem`."""
    return _Parser(src).parse()
