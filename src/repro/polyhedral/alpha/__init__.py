"""Mini-Alpha equational language: AST, parser, normalization, interpreter."""

from .ast import (
    BINOPS,
    REDUCE_INIT,
    BinOp,
    Case,
    Const,
    Equation,
    Expr,
    IndexExpr,
    Reduce,
    VarRef,
    free_vars,
    walk,
)
from .interp import EvaluationError, Interpreter
from .normalize import normalize, normalize_expr, normalize_reductions
from .parser import ParseError, parse_system
from .system import AlphaSystem, SystemError, VarDecl

__all__ = [
    "BINOPS",
    "REDUCE_INIT",
    "BinOp",
    "Case",
    "Const",
    "Equation",
    "Expr",
    "IndexExpr",
    "Reduce",
    "VarRef",
    "free_vars",
    "walk",
    "EvaluationError",
    "Interpreter",
    "normalize",
    "normalize_expr",
    "normalize_reductions",
    "ParseError",
    "parse_system",
    "AlphaSystem",
    "SystemError",
    "VarDecl",
]
