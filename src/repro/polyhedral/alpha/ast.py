"""Expression AST of the mini-Alpha equational language.

Alpha programs are systems of affine recurrence equations over polyhedral
domains.  An equation body is built from:

* :class:`Const` — a literal;
* :class:`IndexExpr` — an affine expression of the equation's indices,
  used as a value (e.g. ``iscore(i1, i2)`` lookups are input reads, but
  guards like ``i1 == j1`` are domain restrictions, not values);
* :class:`VarRef` — a read of another (or the same) variable through an
  affine access function;
* :class:`BinOp` — pointwise ``+ - * max min``;
* :class:`Reduce` — a reduction ``reduce(op, extra_indices : domain, body)``
  where the body may use both the equation's indices and the extra
  reduction indices;
* :class:`Case` — a piecewise definition: ordered (domain, expression)
  branches (first match wins, matching AlphaZ restrict/case semantics).

The AST is deliberately small but sufficient to express BPMax in full
(:mod:`repro.core.alpha_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..affine import AffineExpr, AffineMap
from ..domain import Domain

__all__ = [
    "Expr",
    "Const",
    "IndexExpr",
    "VarRef",
    "BinOp",
    "Reduce",
    "Case",
    "Equation",
    "BINOPS",
    "REDUCE_INIT",
    "free_vars",
    "walk",
]

#: scalar implementations of the binary operators
BINOPS: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "max": max,
    "min": min,
}

#: identity element of each reduction operator
REDUCE_INIT: dict[str, float] = {
    "+": 0.0,
    "*": 1.0,
    "max": float("-inf"),
    "min": float("inf"),
}


class Expr:
    """Base class for Alpha expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class IndexExpr(Expr):
    """An affine combination of in-scope indices used as a value."""

    expr: AffineExpr

    def __str__(self) -> str:
        return f"val({self.expr})"


@dataclass(frozen=True)
class VarRef(Expr):
    """Read variable ``name`` at ``access(indices)``."""

    name: str
    access: AffineMap

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(map(str, self.access.exprs))}]"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def __str__(self) -> str:
        if self.op in ("max", "min"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Reduce(Expr):
    """``reduce(op, [extra indices] in domain, body)``.

    ``domain`` is over the equation indices plus ``extra`` (its names must
    equal eq_indices + extra, in that order) and bounds the reduction.
    """

    op: str
    extra: tuple[str, ...]
    domain: Domain
    body: Expr

    def __post_init__(self) -> None:
        if self.op not in REDUCE_INIT:
            raise ValueError(f"operator {self.op!r} has no reduction identity")
        object.__setattr__(self, "extra", tuple(self.extra))
        if tuple(self.domain.names[-len(self.extra) :]) != self.extra:
            raise ValueError(
                f"reduction domain must end with extra indices {self.extra}, "
                f"got {self.domain.names}"
            )

    def __str__(self) -> str:
        return f"reduce({self.op}, [{', '.join(self.extra)}], {self.body})"


@dataclass(frozen=True)
class Case(Expr):
    """Ordered piecewise branches; first matching domain wins."""

    branches: tuple[tuple[Domain, Expr], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        if not self.branches:
            raise ValueError("case expression needs at least one branch")

    def __str__(self) -> str:
        inner = "; ".join(f"{d}: {e}" for d, e in self.branches)
        return f"case {{ {inner} }}"


@dataclass(frozen=True)
class Equation:
    """``var[indices] = body`` over ``domain`` (domain names = indices)."""

    var: str
    domain: Domain
    body: Expr

    def __str__(self) -> str:
        return f"{self.var}[{', '.join(self.domain.names)}] = {self.body}"


def walk(expr: Expr):
    """Pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Reduce):
        yield from walk(expr.body)
    elif isinstance(expr, Case):
        for _, e in expr.branches:
            yield from walk(e)


def free_vars(expr: Expr) -> set[str]:
    """Names of all variables read anywhere in ``expr``."""
    return {e.name for e in walk(expr) if isinstance(e, VarRef)}
