"""Schedule-driven code generation (``generateScheduleC`` analogue).

Given a normalized mini-Alpha system plus a :class:`TargetMapping`
(space-time maps, init schedules for reductions, memory maps/spaces,
tiling), emit a self-contained Python module that executes every
statement instance in **global lexicographic time order**:

* each statement (equation body, reduction initialisation, reduction
  accumulation) gets its own generated loop nest scanning the statement's
  *scan domain* — time dimensions first, then iteration indices, with the
  schedule equalities ``t_k == sched_k(z)`` resolved by Fourier-Motzkin
  elimination into affine loop bounds;
* a driver lazily merges the per-statement scans with ``heapq.merge`` and
  dispatches bodies, which is exactly the semantics of executing the
  fused nest AlphaZ would emit (ties between equal time vectors are
  parallel instances and may run in any order);
* memory is allocated per memory *space*; variables sharing a space
  alias one array through their memory maps (``setMemorySpace``);
* tiling directives insert tile-coordinate dimensions ahead of the tiled
  time band, so tiles execute atomically in tile-lexicographic order.

The generated module needs only ``numpy`` and ``heapq``.
"""

from __future__ import annotations

from fractions import Fraction

from ..affine import AffineExpr, AffineMap, var
from ..alpha.ast import BinOp, Case, Const, Expr, IndexExpr, Reduce, VarRef
from ..alpha.system import AlphaSystem, SystemError
from ..domain import Constraint, Domain
from .bounds import guard_expr, loop_bounds, py_affine
from .mapping import MappingError, TargetMapping
from .writec import _Emitter, _REDUCE_IDENT, _REDUCE_PYOP, _const_text

__all__ = ["generate_schedule_code", "compile_schedule"]


def _mem_index(mapping: AffineMap | None, names: tuple[str, ...]) -> str:
    """Python index-tuple text for a read/write through a memory map."""
    if mapping is None:
        return ", ".join(names)
    bindings = dict(zip(mapping.inputs, (var(n) for n in names)))
    return ", ".join(py_affine(e.substitute(bindings)) for e in mapping.exprs)


def _scan_domain(
    base: Domain,
    schedule_exprs: tuple[AffineExpr, ...],
    tile_extents: tuple[int, ...] | None,
) -> Domain:
    """Domain over (tile dims +) time dims + iteration dims with equalities."""
    tnames = tuple(f"_t{k}" for k in range(len(schedule_exprs)))
    cons: list[Constraint] = [
        Constraint(var(tn) - ex, "eq") for tn, ex in zip(tnames, schedule_exprs)
    ]
    time_names: tuple[str, ...] = tnames
    if tile_extents:
        if len(tile_extents) != len(schedule_exprs):
            raise MappingError(
                f"tile spec rank {len(tile_extents)} != schedule rank "
                f"{len(schedule_exprs)}"
            )
        tiled = [k for k, ex in enumerate(tile_extents) if ex > 0]
        ttnames = tuple(f"_tt{k}" for k in tiled)
        # tile coordinates sit immediately before the tiled band so the
        # outer (untiled) time dimensions keep their priority and tiles
        # execute atomically within each outer time slice
        first = tiled[0]
        time_names = tnames[:first] + ttnames + tnames[first:]
        for k in tiled:
            extent = tile_extents[k]
            tt = var(f"_tt{k}")
            t = var(f"_t{k}")
            cons.append(Constraint(t - tt * extent, "ge"))
            cons.append(Constraint(tt * extent + (extent - 1) - t, "ge"))
    return Domain(
        names=time_names + tuple(base.names),
        constraints=tuple(cons) + tuple(base.constraints),
        params=base.params,
    )


class _SchedGen:
    def __init__(self, system: AlphaSystem, mapping: TargetMapping) -> None:
        system.validate()
        mapping.validate(system.declarations)
        self.system = system
        self.mapping = mapping
        self.e = _Emitter()
        self.stmt_bodies: list[str] = []  # function names
        self.rank = mapping.schedule_rank()
        self.n_key = None  # length of merge key, set per tiling config

    # -- expression bodies -------------------------------------------------

    def _read(self, ref: VarRef) -> str:
        args = ", ".join(py_affine(a) for a in ref.access.exprs)
        return f"_rd_{ref.name}({args})"

    def _gen_expr(self, expr: Expr) -> str:
        e = self.e
        if isinstance(expr, Const):
            return _const_text(expr.value)
        if isinstance(expr, IndexExpr):
            return f"({py_affine(expr.expr)})"
        if isinstance(expr, VarRef):
            return self._read(expr)
        if isinstance(expr, BinOp):
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            if expr.op in ("max", "min"):
                return f"{expr.op}({left}, {right})"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, Case):
            tmp = e.fresh("case")
            first = True
            for dom, branch in expr.branches:
                cond = guard_expr(dom.constraints)
                e.emit(f"{'if' if first else 'elif'} {cond}:")
                first = False
                e.indent += 1
                val = self._gen_expr(branch)
                e.emit(f"{tmp} = {val}")
                e.indent -= 1
            e.emit("else:")
            e.indent += 1
            e.emit("raise ValueError('point outside every case branch')")
            e.indent -= 1
            return tmp
        if isinstance(expr, Reduce):
            raise SystemError(
                "schedgen requires NormalizeReduction: found a Reduce that is "
                "not the direct child of an equation"
            )
        raise TypeError(f"cannot generate code for {type(expr).__name__}")

    # -- statements ---------------------------------------------------------

    def _emit_scan(
        self,
        fn: str,
        dom: Domain,
        stmt_id: int,
        key_len: int,
        payload_names: tuple[str, ...],
    ) -> None:
        """Emit ``def fn():`` yielding (time_key, stmt_id, payload)."""
        e = self.e
        e.emit(f"def {fn}():")
        e.indent += 1
        systems = dom._eliminated_systems()
        depth0 = e.indent
        for level in range(dom.dim):
            lo, hi = loop_bounds(dom, level, systems)
            e.emit(f"for {dom.names[level]} in range({lo}, ({hi}) + 1):")
            e.indent += 1
        guard = guard_expr(dom.constraints)
        if guard != "True":
            e.emit(f"if not ({guard}):")
            e.indent += 1
            e.emit("continue")
            e.indent -= 1
        key = ", ".join(dom.names[:key_len])
        payload = ", ".join(payload_names)
        e.emit(f"yield (({key},), {stmt_id}, ({payload},))")
        e.indent = depth0 - 1  # leave the def (scans are emitted at depth 1)
        e.emit()

    def _emit_body_fn(self, fn: str, names: tuple[str, ...], emit_inner) -> None:
        e = self.e
        e.emit(f"def {fn}({', '.join(names)}):")
        e.indent += 1
        emit_inner()
        e.indent -= 1
        e.emit()

    # -- main ----------------------------------------------------------------

    def generate(self, func_name: str) -> str:
        system, mapping, e = self.system, self.mapping, self.e
        e.emit('"""Auto-generated by repro.polyhedral.codegen.schedgen — do not edit."""')
        e.emit("import heapq")
        e.emit("import numpy as np")
        e.emit()
        e.emit(f"def {func_name}(params, inputs):")
        e.indent += 1
        for p in system.params:
            e.emit(f"{p} = params['{p}']")
        e.emit()

        scheduled = [v for v in mapping.space_time if not system.is_input(v)]
        decls = system.declarations

        # tiling configuration must be uniform (paper: subsystem isolation)
        tile_specs = {mapping.tiling.get(v) for v in scheduled}
        if len(tile_specs) > 1:
            raise MappingError(
                "schedgen requires a uniform tiling over all scheduled "
                "statements; isolate the tiled band in a subsystem "
                "(paper Phase III)"
            )
        tiling = tile_specs.pop() if tile_specs else None
        n_tile_dims = sum(1 for t in (tiling or ()) if t > 0)
        key_len = n_tile_dims + self.rank

        # ---- input readers
        for decl in system.inputs:
            e.emit(f"_src_{decl.name} = inputs['{decl.name}']")
            args = ", ".join(decl.domain.names)
            e.emit(f"def _rd_{decl.name}({args}):")
            e.indent += 1
            e.emit(f"if callable(_src_{decl.name}):")
            e.indent += 1
            e.emit(f"return float(_src_{decl.name}({args}))")
            e.indent -= 1
            e.emit(f"return float(_src_{decl.name}[{args}])")
            e.indent -= 1
            e.emit()

        # ---- memory allocation per space (shape = max mapped index + 1)
        spaces: dict[str, list[str]] = {}
        for v in scheduled:
            spaces.setdefault(mapping.space_of(v), []).append(v)
        for space, members in spaces.items():
            dims = {
                (mapping.memory_maps[m].dim_out
                 if m in mapping.memory_maps else decls[m].domain.dim)
                for m in members
            }
            if len(dims) != 1:
                raise MappingError(
                    f"variables sharing space {space!r} map to different "
                    f"storage ranks {sorted(dims)}"
                )
            rank = dims.pop()
            e.emit(f"_shape_{space} = [0] * {rank}")
            for m in members:
                dom = decls[m].domain
                mm = mapping.memory_maps.get(m)
                idx = _mem_index(mm, dom.names)
                systems = dom._eliminated_systems()
                depth0 = e.indent
                for level in range(dom.dim):
                    lo, hi = loop_bounds(dom, level, systems)
                    e.emit(
                        f"for {dom.names[level]} in range({lo}, ({hi}) + 1):"
                    )
                    e.indent += 1
                guard = guard_expr(dom.constraints)
                if guard != "True":
                    e.emit(f"if not ({guard}):")
                    e.indent += 1
                    e.emit("continue")
                    e.indent -= 1
                e.emit(f"for _d, _x in enumerate(({idx},)):")
                e.indent += 1
                e.emit(
                    f"_shape_{space}[_d] = max(_shape_{space}[_d], _x + 1)"
                )
                e.indent -= 1
                e.indent = depth0
            e.emit(
                f"_mem_{space} = np.full(tuple(_shape_{space}), np.nan, "
                f"dtype=np.float64)"
            )
            e.emit()

        # ---- computed-variable readers (through memory maps)
        for v in scheduled:
            dom = decls[v].domain
            space = mapping.space_of(v)
            idx = _mem_index(mapping.memory_maps.get(v), dom.names)
            args = ", ".join(dom.names)
            e.emit(f"def _rd_{v}({args}):")
            e.indent += 1
            e.emit(f"return _mem_{space}[{idx}]")
            e.indent -= 1
            e.emit()

        # any variable read but not scheduled is an error
        for eq in system.equations:
            if eq.var not in mapping.space_time:
                raise MappingError(
                    f"no space-time map for computed variable {eq.var!r}"
                )

        # ---- statements: scans + bodies
        stmt_id = 0
        scan_fns: list[str] = []
        for eq in system.equations:
            v = eq.var
            dom = decls[v].domain
            sched = mapping.space_time[v]
            space = mapping.space_of(v)
            widx = _mem_index(mapping.memory_maps.get(v), dom.names)
            body = eq.body
            is_reduction = isinstance(body, Reduce)
            if is_reduction:
                red: Reduce = body
                init_sched = mapping.init_time.get(v)
                if init_sched is None:
                    raise MappingError(
                        f"reduction variable {v!r} needs an init schedule "
                        "(the second mapping of setSpaceTimeMap)"
                    )
                # init statement over the equation domain
                fn_body = f"_stmt{stmt_id}_body"
                fn_scan = f"_stmt{stmt_id}_scan"

                def emit_init(widx=widx, space=space, op=red.op):
                    e.emit(f"_mem_{space}[{widx}] = {_REDUCE_IDENT[op]}")

                self._emit_body_fn(fn_body, dom.names, emit_init)
                init_dom = _scan_domain(dom, init_sched.mapping.exprs, tiling)
                self._emit_scan(fn_scan, init_dom, stmt_id, key_len, dom.names)
                scan_fns.append(fn_scan)
                stmt_id += 1

                # accumulation statement over the extended domain
                if tuple(sched.mapping.inputs) != tuple(red.domain.names):
                    raise MappingError(
                        f"body schedule of {v!r} must be over the reduction "
                        f"indices {red.domain.names}, got {sched.mapping.inputs}"
                    )
                fn_body = f"_stmt{stmt_id}_body"
                fn_scan = f"_stmt{stmt_id}_scan"

                def emit_acc(red=red, widx=widx, space=space):
                    val = self._gen_expr(red.body)
                    upd = _REDUCE_PYOP[red.op].format(
                        a=f"_mem_{space}[{widx}]", b=val
                    )
                    e.emit(f"_mem_{space}[{widx}] = {upd}")

                self._emit_body_fn(fn_body, red.domain.names, emit_acc)
                acc_dom = _scan_domain(red.domain, sched.mapping.exprs, tiling)
                self._emit_scan(
                    fn_scan, acc_dom, stmt_id, key_len, red.domain.names
                )
                scan_fns.append(fn_scan)
                stmt_id += 1
            else:
                if tuple(sched.mapping.inputs) != tuple(dom.names):
                    raise MappingError(
                        f"schedule of {v!r} must be over {dom.names}, "
                        f"got {sched.mapping.inputs}"
                    )
                fn_body = f"_stmt{stmt_id}_body"
                fn_scan = f"_stmt{stmt_id}_scan"

                def emit_plain(body=body, widx=widx, space=space):
                    val = self._gen_expr(body)
                    e.emit(f"_mem_{space}[{widx}] = {val}")

                self._emit_body_fn(fn_body, dom.names, emit_plain)
                scan = _scan_domain(dom, sched.mapping.exprs, tiling)
                self._emit_scan(fn_scan, scan, stmt_id, key_len, dom.names)
                scan_fns.append(fn_scan)
                stmt_id += 1

        # ---- driver: lazy merge of per-statement scans in time order
        e.emit(f"_bodies = [{', '.join(f'_stmt{k}_body' for k in range(stmt_id))}]")
        e.emit(f"_scans = [{', '.join(f + '()' for f in scan_fns)}]")
        e.emit("for _key, _sid, _pt in heapq.merge(*_scans):")
        e.indent += 1
        e.emit("_bodies[_sid](*_pt)")
        e.indent -= 1
        e.emit()

        # ---- collect outputs
        e.emit("_out = {}")
        for decl in system.outputs:
            v = decl.name
            if v not in mapping.space_time:
                raise MappingError(f"output {v!r} was never scheduled")
            dom = decl.domain
            space = mapping.space_of(v)
            idx = _mem_index(mapping.memory_maps.get(v), dom.names)
            e.emit(f"_pts = []")
            systems = dom._eliminated_systems()
            depth0 = e.indent
            for level in range(dom.dim):
                lo, hi = loop_bounds(dom, level, systems)
                e.emit(f"for {dom.names[level]} in range({lo}, ({hi}) + 1):")
                e.indent += 1
            guard = guard_expr(dom.constraints)
            if guard != "True":
                e.emit(f"if not ({guard}):")
                e.indent += 1
                e.emit("continue")
                e.indent -= 1
            tup = ", ".join(dom.names)
            e.emit(f"_pts.append((({tup},), _mem_{space}[{idx}]))")
            e.indent = depth0
            e.emit("if _pts:")
            e.indent += 1
            e.emit(
                f"_shape = tuple(max(p[0][d] for p in _pts) + 1 "
                f"for d in range({dom.dim}))"
            )
            e.emit("_arr = np.full(_shape, np.nan)")
            e.emit("for _p, _v in _pts:")
            e.indent += 1
            e.emit("_arr[_p] = _v")
            e.indent -= 1
            e.emit(f"_out['{v}'] = _arr")
            e.indent -= 1
            e.emit("else:")
            e.indent += 1
            e.emit(f"_out['{v}'] = np.full((0,) * {dom.dim}, np.nan)")
            e.indent -= 1
        e.emit("return _out")
        return e.source()


def generate_schedule_code(
    system: AlphaSystem, mapping: TargetMapping, func_name: str | None = None
) -> str:
    """Emit the scheduled Python module source for ``system``."""
    return _SchedGen(system, mapping).generate(func_name or system.name)


def compile_schedule(
    system: AlphaSystem, mapping: TargetMapping, func_name: str | None = None
):
    """Generate, ``exec`` and return (function, source)."""
    src = generate_schedule_code(system, mapping, func_name)
    namespace: dict = {}
    exec(compile(src, f"<schedgen:{system.name}>", "exec"), namespace)
    return namespace[func_name or system.name], src
