"""Code generation: write-C and schedule-C analogues, mappings, LOC stats."""

from .loc import LocStats, count_loc
from .mapping import MappingError, TargetMapping
from .schedgen import compile_schedule, generate_schedule_code
from .writec import compile_write, generate_write_code

__all__ = [
    "LocStats",
    "count_loc",
    "MappingError",
    "TargetMapping",
    "compile_schedule",
    "generate_schedule_code",
    "compile_write",
    "generate_write_code",
]
