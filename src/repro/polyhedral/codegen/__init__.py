"""Code generation: write-C and schedule-C analogues, mappings, LOC stats."""

from .loc import LocStats, count_loc
from .mapping import MappingError, TargetMapping
from .schedgen import compile_schedule, generate_schedule_code
from .vectorize import (
    CODEGEN_SCHEDULES,
    KernelSchedule,
    ScheduleLegalityError,
    candidate_schedules,
    candidate_tiles,
    compile_window_kernel,
    generate_window_kernel,
    get_kernel_schedule,
    is_legal_schedule,
    loop_order,
)
from .writec import compile_write, generate_write_code

__all__ = [
    "LocStats",
    "count_loc",
    "MappingError",
    "TargetMapping",
    "compile_schedule",
    "generate_schedule_code",
    "compile_write",
    "generate_write_code",
    "CODEGEN_SCHEDULES",
    "KernelSchedule",
    "ScheduleLegalityError",
    "candidate_schedules",
    "candidate_tiles",
    "compile_window_kernel",
    "generate_window_kernel",
    "get_kernel_schedule",
    "is_legal_schedule",
    "loop_order",
]
