"""Shared emission helpers: affine expressions and FM bounds as Python text.

Both code generators translate polyhedral objects into self-contained
Python source (no runtime dependency on this package).  The helpers here
turn :class:`~repro.polyhedral.affine.AffineExpr` into Python integer
expressions and Fourier-Motzkin eliminated systems into ``for``-loop bound
expressions (exact ceil/floor integer division on integerised
constraints).
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from ..affine import AffineExpr
from ..domain import Constraint, Domain

__all__ = ["py_affine", "loop_bounds", "guard_expr"]


def _integerize(expr: AffineExpr) -> tuple[dict[str, int], int]:
    """Scale an affine expr by the denominator lcm; return int coeffs/const."""
    dens = [c.denominator for c in expr.coeffs.values()] + [expr.const.denominator]
    scale = lcm(*dens) if dens else 1
    coeffs = {n: int(c * scale) for n, c in expr.coeffs.items()}
    return coeffs, int(expr.const * scale)


def py_affine(expr: AffineExpr) -> str:
    """Render an (integerised) affine expression as Python source."""
    coeffs, const = _integerize(expr)
    parts: list[str] = []
    for name, c in coeffs.items():
        if c == 1:
            parts.append(f"+ {name}")
        elif c == -1:
            parts.append(f"- {name}")
        elif c > 0:
            parts.append(f"+ {c}*{name}")
        else:
            parts.append(f"- {-c}*{name}")
    if const > 0 or not parts:
        parts.append(f"+ {const}")
    elif const < 0:
        parts.append(f"- {-const}")
    text = " ".join(parts).lstrip("+ ").strip()
    return text if text else "0"


def loop_bounds(
    domain: Domain,
    level: int,
    systems: list[list[Constraint]],
) -> tuple[str, str]:
    """Python expressions for the inclusive [lo, hi] range of a loop level.

    ``lo`` uses exact ceiling division, ``hi`` exact floor division, taking
    max/min over all bounding constraints.  Raises if the level is
    unbounded (the caller should have added box constraints).
    """
    name = domain.names[level]
    lowers: list[str] = []
    uppers: list[str] = []
    for c in systems[level]:
        a = c.expr.coeff(name)
        if a == 0:
            continue
        rest = c.expr + AffineExpr(coeffs={name: -a})
        # integerise 'a' and 'rest' by a common scale so the division is exact
        dens = [x.denominator for x in rest.coeffs.values()] + [
            rest.const.denominator,
            a.denominator,
        ]
        scale = lcm(*dens)
        ai = int(a * scale)
        rest_txt = py_affine(rest * scale)
        if c.kind == "eq":
            # name == -rest/a : contributes to both bounds (+ divisibility
            # handled by the final guard)
            if ai > 0:
                lowers.append(f"-((({rest_txt})) // ({ai}))" )
                uppers.append(f"((-({rest_txt})) // ({ai}))")
            else:
                lowers.append(f"-((-({rest_txt})) // ({-ai}))")
                uppers.append(f"((({rest_txt})) // ({-ai}))")
        elif ai > 0:
            # a*name + rest >= 0  ->  name >= ceil(-rest/a) = -(rest // a)
            lowers.append(f"-((({rest_txt})) // ({ai}))")
        else:
            # name <= floor(rest/(-a))
            uppers.append(f"((({rest_txt})) // ({-ai}))")
    if not lowers or not uppers:
        raise ValueError(
            f"loop level {name!r} of domain {domain} is unbounded"
        )
    lo = lowers[0] if len(lowers) == 1 else "max(" + ", ".join(lowers) + ")"
    hi = uppers[0] if len(uppers) == 1 else "min(" + ", ".join(uppers) + ")"
    return lo, hi


def guard_expr(constraints: tuple[Constraint, ...] | list[Constraint]) -> str:
    """Python boolean expression testing every constraint exactly."""
    tests: list[str] = []
    for c in constraints:
        txt = py_affine(c.expr)
        tests.append(f"({txt}) {'==' if c.kind == 'eq' else '>='} 0")
    return " and ".join(tests) if tests else "True"
