"""Lines-of-code statistics for generated programs (paper Table VI).

The paper reports how much code AlphaZ emits for each BPMax version
(base: 140 LOC; double max-plus: 150; full BPMax coarse/fine/hybrid:
~1200; hybrid+tiled: ~1400) together with the amount of hand-written
code and macro adjustments.  We compute the same metrics over our
generated Python sources.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LocStats", "count_loc"]


@dataclass(frozen=True)
class LocStats:
    """Code-size metrics of one generated module."""

    name: str
    total_lines: int
    code_lines: int
    comment_lines: int
    blank_lines: int
    loop_count: int
    statement_functions: int

    def row(self) -> dict[str, int | str]:
        """Table VI-style row."""
        return {
            "implementation": self.name,
            "loc": self.code_lines,
            "loops": self.loop_count,
            "statements": self.statement_functions,
        }


def count_loc(name: str, source: str) -> LocStats:
    """Compute :class:`LocStats` for generated Python source text."""
    total = code = comment = blank = loops = stmts = 0
    for raw in source.splitlines():
        total += 1
        line = raw.strip()
        if not line:
            blank += 1
            continue
        if line.startswith("#") or line.startswith('"""'):
            comment += 1
            continue
        code += 1
        if line.startswith("for "):
            loops += 1
        if line.startswith("def _stmt") or line.startswith("def _v_"):
            stmts += 1
    return LocStats(
        name=name,
        total_lines=total,
        code_lines=code,
        comment_lines=comment,
        blank_lines=blank,
        loop_count=loops,
        statement_functions=stmts,
    )
