"""Vectorized window-kernel emitter: space-time map + tiling → numpy source.

This is the bridge between the mini-AlphaZ layer and the production
kernel registry: a :class:`~repro.polyhedral.schedule.Schedule` over the
R0 reduction indices ``(s, k)`` — ``s`` the stacked ``k1`` split, ``k``
the inner split column ``k2`` — plus a column-tile width is lowered to a
self-contained Python module implementing one *whole-window* R0+R3+R4
accumulation directly on the packed :class:`~repro.core.tables.FTable`
slab layout:

* the left operands of every split are consecutive windows of one outer
  row, so the kernel reads them through a single zero-copy
  ``row_slab(i1, i1, K)`` view instead of the gathered ``astack`` copy
  the generic batched path makes;
* the raw right operands of R3 are recovered from the *shifted* stack
  (``raw[i2] == shifted[i2 - 1]`` for ``i2 >= 1``) plus a gathered row 0,
  eliminating the ``braw`` stack copy as well.

Of the three K x M x M stack copies per window on the generic path, the
generated kernels keep only the shifted-B gather — that memory-traffic
cut is where the speedup over ``numpy-batched`` comes from.

Legality: R0 is a pure ⊕-reduction over ``(s, k)`` with a commutative,
associative ⊕, so *any* enumeration order of the reduction domain is a
valid schedule — but the time map must be a **bijection** on the index
set so a non-idempotent ⊕ (log-sum-exp) combines every candidate exactly
once.  :func:`loop_order` enforces exactly that: each time dimension a
distinct reduction index with coefficient 1 and no constant part.

The generated module is semiring-parametric: it binds the ⊕/⊗ ufuncs
from a :class:`~repro.semiring.semiring.Semiring` descriptor at load
time (``make_kernel(semiring)``), and also exposes a scalar-loop twin
(``make_scalar_kernel``, max-plus only) in the shape numba's ``njit``
compiles well — used when numba is importable, and as a plain-Python
conformance oracle when it is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent, indent

from ..schedule import Schedule
from .writec import reduce_identity

__all__ = [
    "CODEGEN_VERSION",
    "REDUCTION_INDICES",
    "ScheduleLegalityError",
    "KernelSchedule",
    "CODEGEN_SCHEDULES",
    "candidate_schedules",
    "candidate_tiles",
    "get_kernel_schedule",
    "loop_order",
    "is_legal_schedule",
    "generate_window_kernel",
    "compile_window_kernel",
]

#: bump to invalidate every on-disk generated-kernel cache entry
CODEGEN_VERSION = 1

#: the R0 reduction indices a window schedule maps: ``s`` enumerates the
#: stacked k1 splits, ``k`` the inner split column k2
REDUCTION_INDICES = ("s", "k")


class ScheduleLegalityError(ValueError):
    """A space-time map that cannot drive the window-kernel emitter."""


def loop_order(schedule: Schedule) -> tuple[str, ...]:
    """Reduction-loop nesting implied by ``schedule``'s time map.

    Raises :class:`ScheduleLegalityError` unless the map is a pure
    permutation of :data:`REDUCTION_INDICES` — the precise condition
    under which executing the ⊕-reduction in time order combines every
    ``(s, k)`` candidate exactly once (required by non-idempotent ⊕).
    """
    mapping = schedule.mapping
    if tuple(mapping.inputs) != REDUCTION_INDICES:
        raise ScheduleLegalityError(
            f"window schedules map the reduction indices {REDUCTION_INDICES}, "
            f"got inputs {tuple(mapping.inputs)}"
        )
    order: list[str] = []
    for expr in mapping.exprs:
        active = {n: expr.coeff(n) for n in expr.names if expr.coeff(n) != 0}
        if expr.const != 0 or len(active) != 1 or set(active.values()) != {1}:
            raise ScheduleLegalityError(
                f"time dimension {expr} is not a bare reduction index; "
                "the emitter requires a permutation schedule"
            )
        order.append(next(iter(active)))
    if sorted(order) != sorted(REDUCTION_INDICES):
        raise ScheduleLegalityError(
            f"time map touches {tuple(order)}; a legal window schedule is "
            f"a bijection on {REDUCTION_INDICES}"
        )
    return tuple(order)


def is_legal_schedule(schedule: Schedule) -> bool:
    """True when :func:`loop_order` accepts ``schedule``."""
    try:
        loop_order(schedule)
    except ScheduleLegalityError:
        return False
    return True


@dataclass(frozen=True)
class KernelSchedule:
    """A named, emitter-ready window schedule (one autotuner candidate)."""

    name: str
    schedule: Schedule
    description: str = ""

    def __post_init__(self) -> None:
        loop_order(self.schedule)  # fail fast on illegal maps

    @property
    def order(self) -> tuple[str, ...]:
        return loop_order(self.schedule)

    @property
    def time_map(self) -> str:
        return str(self.schedule.mapping)


#: the shipped schedule candidates.  ``kmajor`` is the generic batched
#: path's order (k outer, whole split stack fused per step — the ``s``
#: time dimension is "parallel" in the AlphaZ sense: one vector op);
#: ``smajor`` walks splits outermost with 2-D row slabs per step, the
#: order the paper's per-split kernels use.
CODEGEN_SCHEDULES: tuple[KernelSchedule, ...] = (
    KernelSchedule(
        "kmajor",
        Schedule.parse("R0", "(s, k -> k, s)", parallel_dims=(1,)),
        "k2 outer; every split's step fused into one stacked 3-D op",
    ),
    KernelSchedule(
        "smajor",
        Schedule.parse("R0", "(s, k -> s, k)"),
        "split outer; per-split 2-D row slabs (no cross-split scratch)",
    ),
)

_BY_NAME = {ks.name: ks for ks in CODEGEN_SCHEDULES}


def candidate_schedules() -> tuple[KernelSchedule, ...]:
    """Schedule candidates the joint autotuner sweeps."""
    return CODEGEN_SCHEDULES


def get_kernel_schedule(name: str) -> KernelSchedule:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel schedule {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def candidate_tiles(m: int) -> tuple[int, ...]:
    """Column-tile widths worth sweeping for inner length ``m`` (0 = untiled)."""
    return (0, *(w for w in (8, 16, 32, 64) if w < m))


# -- source emission ----------------------------------------------------------

_NEG_INF_TEXT = reduce_identity("max")  # shared algebra source of truth


def _r0_vector_body(order: tuple[str, ...], wj: int) -> str:
    """The schedule-specific R0 accumulation, vector form.

    Every variant applies, per output cell, the identical sequence of
    ⊕-accumulations a legal enumeration of the ``(s, k)`` domain yields:
    ``kmajor`` reduces the whole stack per ``k`` step (bit-identical to
    the generic batched kernel for *any* engine semiring), ``smajor``
    accumulates per split (same bits under max-plus; equal within
    rounding for log-sum-exp).  Column tiling never reorders the per-cell
    sequence — each cell lives in exactly one column block.
    """
    if order == ("k", "s"):
        if wj == 0:
            return dedent(
                """\
                for _k in range(m - 1):
                    _rows = _k + 1
                    _c0 = _k + 1
                    _w = m - _c0
                    _t = flat_t[: K * _rows * _w].reshape(K, _rows, _w)
                    _r = flat_r[: _rows * _w].reshape(_rows, _w)
                    _cblk = acc[:_rows, _c0:]
                    mul(aslab[:, :_rows, _k, None], bstack[:, _k, None, _c0:], out=_t)
                    reduce(_t, axis=0, out=_r)
                    accum(_cblk, _r, out=_cblk)
                """
            )
        return dedent(
            f"""\
            for _j0 in range(1, m, {wj}):
                _jhi = min(_j0 + {wj}, m)
                for _k in range(_jhi - 1):
                    _rows = _k + 1
                    _c0 = _k + 1 if _k + 1 > _j0 else _j0
                    _w = _jhi - _c0
                    _t = flat_t[: K * _rows * _w].reshape(K, _rows, _w)
                    _r = flat_r[: _rows * _w].reshape(_rows, _w)
                    _cblk = acc[:_rows, _c0:_jhi]
                    mul(aslab[:, :_rows, _k, None], bstack[:, _k, None, _c0:_jhi], out=_t)
                    reduce(_t, axis=0, out=_r)
                    accum(_cblk, _r, out=_cblk)
            """
        )
    # order == ("s", "k")
    if wj == 0:
        return dedent(
            """\
            for _s in range(K):
                _a = aslab[_s]
                _b = bstack[_s]
                for _k in range(m - 1):
                    _rows = _k + 1
                    _c0 = _k + 1
                    _w = m - _c0
                    _t = flat_t[: _rows * _w].reshape(_rows, _w)
                    _cblk = acc[:_rows, _c0:]
                    mul(_a[:_rows, _k, None], _b[_k, None, _c0:], out=_t)
                    accum(_cblk, _t, out=_cblk)
            """
        )
    return dedent(
        f"""\
        for _s in range(K):
            _a = aslab[_s]
            _b = bstack[_s]
            for _j0 in range(1, m, {wj}):
                _jhi = min(_j0 + {wj}, m)
                for _k in range(_jhi - 1):
                    _rows = _k + 1
                    _c0 = _k + 1 if _k + 1 > _j0 else _j0
                    _w = _jhi - _c0
                    _t = flat_t[: _rows * _w].reshape(_rows, _w)
                    _cblk = acc[:_rows, _c0:_jhi]
                    mul(_a[:_rows, _k, None], _b[_k, None, _c0:_jhi], out=_t)
                    accum(_cblk, _t, out=_cblk)
        """
    )


def _r0_scalar_body(order: tuple[str, ...], wj: int) -> str:
    """The schedule-specific R0 accumulation, scalar-loop (njit) form."""
    inner = dedent(
        """\
        for _i in range(_k + 1):
            _a = aslab[_s, _i, _k]
            if _a == NEG_INF:
                continue
            for _j in range({jlo}, {jhi}):
                _v = _a + bstack[_s, _k, _j]
                if _v > acc[_i, _j]:
                    acc[_i, _j] = _v
        """
    )
    if wj == 0:
        cell = inner.format(jlo="_k + 1", jhi="m")
        if order == ("k", "s"):
            loops = "for _k in range(m - 1):\n    for _s in range(K):\n"
        else:
            loops = "for _s in range(K):\n    for _k in range(m - 1):\n"
        return loops + indent(cell, "        ")
    cell = inner.format(jlo="_c0", jhi="_jhi")
    block = (
        f"for _j0 in range(1, m, {wj}):\n"
        f"    _jhi = min(_j0 + {wj}, m)\n"
    )
    if order == ("k", "s"):
        loops = (
            block
            + "    for _k in range(_jhi - 1):\n"
            + "        _c0 = _k + 1 if _k + 1 > _j0 else _j0\n"
            + "        for _s in range(K):\n"
        )
        return loops + indent(cell, "            ")
    loops = (
        "for _s in range(K):\n"
        + indent(block, "    ")
        + "        for _k in range(_jhi - 1):\n"
        + "            _c0 = _k + 1 if _k + 1 > _j0 else _j0\n"
    )
    return loops + indent(cell, "            ")


_MODULE_TEMPLATE = '''\
"""Auto-generated window kernel — repro.polyhedral.codegen.vectorize.

schedule : {name}  (time map {time_map}; loop order {order})
tile_wj  : {wj}
codegen  : v{version}

Whole-window R0+R3+R4 accumulation on the packed FTable slab layout.
Do not edit: regenerated from the schedule; cached under the autotune
fingerprint.
"""
import numpy as np

SCHEDULE = {name!r}
TIME_MAP = {time_map!r}
LOOP_ORDER = {order!r}
TILE_WJ = {wj}
CODEGEN_VERSION = {version}

NEG_INF = {neg_inf}


def make_kernel(semiring):
    """Bind the ⊕/⊗ ufuncs of ``semiring``; return the window kernel.

    kernel(aslab, bstack, brow0, s1l, s1r, acc, tmp, red) -> acc

    * aslab  (K, m, m): zero-copy row slab — aslab[s] = F[i1, i1+s]
    * bstack (K, m, m): shifted right operands — bstack[s] = shifted(i1+s+1, j1)
    * brow0  (K, m):    row 0 of each *raw* right operand F[i1+s+1, j1]
    * s1l    (K,):      S1[i1, k1] biases (R3)
    * s1r    (K,):      S1[k1+1, j1] biases (R4)
    * acc    (m, m):    the window accumulator, updated in place
    * tmp    (>= K*m*m elements) / red (>= m*m): contiguous scratch

    Rows >= 1 of every raw right operand equal rows 0..m-2 of its
    shifted twin, so R3 runs off ``bstack`` plus ``brow0`` — the raw
    stack is never materialized.
    """
    mul = semiring.mul
    accum = semiring.add
    reduce = semiring.add_reduce

    def kernel(aslab, bstack, brow0, s1l, s1r, acc, tmp, red):
        K = aslab.shape[0]
        m = acc.shape[0]
        if K == 0:
            return acc
        if not (tmp.flags["C_CONTIGUOUS"] and red.flags["C_CONTIGUOUS"]):
            raise ValueError("generated kernel requires contiguous scratch")
        flat_t = tmp.reshape(-1)
        flat_r = red.reshape(-1)
        # R0 — schedule {name}
{r0_vector}
        # R3: raw rows >= 1 recovered from the shifted stack, row 0 gathered
        if m > 1:
            _t = flat_t[: K * (m - 1) * m].reshape(K, m - 1, m)
            _r = flat_r[: (m - 1) * m].reshape(m - 1, m)
            mul(bstack[:, : m - 1, :], s1l[:, None, None], out=_t)
            reduce(_t, axis=0, out=_r)
            _rows1 = acc[1:, :]
            accum(_rows1, _r, out=_rows1)
        _t0 = flat_t[: K * m].reshape(K, m)
        _r0 = flat_r[:m]
        mul(brow0, s1l[:, None], out=_t0)
        reduce(_t0, axis=0, out=_r0)
        _row0 = acc[0]
        accum(_row0, _r0, out=_row0)
        # R4: left operands straight off the packed row slab
        _t = flat_t[: K * m * m].reshape(K, m, m)
        mul(aslab, s1r[:, None, None], out=_t)
        reduce(_t, axis=0, out=red)
        accum(acc, red, out=acc)
        return acc

    return kernel


def make_scalar_kernel(jit=None):
    """Scalar-loop twin of the same schedule (max-plus only).

    The loop nest njit compiles to tight machine code; with ``jit=None``
    it doubles as a plain-Python conformance oracle.
    """

    def kernel(aslab, bstack, brow0, s1l, s1r, acc):
        K = aslab.shape[0]
        m = acc.shape[0]
{r0_scalar}
        for _s in range(K):
            _bias = s1l[_s]
            if _bias != NEG_INF:
                for _j in range(m):
                    _v = brow0[_s, _j] + _bias
                    if _v > acc[0, _j]:
                        acc[0, _j] = _v
                for _i in range(1, m):
                    for _j in range(m):
                        _v = bstack[_s, _i - 1, _j] + _bias
                        if _v > acc[_i, _j]:
                            acc[_i, _j] = _v
        for _s in range(K):
            _bias = s1r[_s]
            if _bias != NEG_INF:
                for _i in range(m):
                    for _j in range(m):
                        _v = aslab[_s, _i, _j] + _bias
                        if _v > acc[_i, _j]:
                            acc[_i, _j] = _v
        return acc

    if jit is not None:
        kernel = jit(kernel)
    return kernel
'''


def generate_window_kernel(ks: KernelSchedule | str, tile_wj: int = 0) -> str:
    """Emit the generated-kernel module source for one (schedule, tile)."""
    if isinstance(ks, str):
        ks = get_kernel_schedule(ks)
    if tile_wj < 0:
        raise ValueError(f"tile width must be >= 0 (0 = untiled), got {tile_wj}")
    order = ks.order
    return _MODULE_TEMPLATE.format(
        name=ks.name,
        time_map=ks.time_map,
        order=order,
        wj=tile_wj,
        version=CODEGEN_VERSION,
        neg_inf=_NEG_INF_TEXT,
        r0_vector=indent(_r0_vector_body(order, tile_wj), " " * 8),
        r0_scalar=indent(_r0_scalar_body(order, tile_wj), " " * 8),
    )


def compile_window_kernel(ks: KernelSchedule | str, tile_wj: int = 0):
    """Generate + exec one variant; return its module namespace and source.

    The persistent compile-and-cache layer lives in
    :mod:`repro.kernels.codegen_backend`; this helper is the direct
    (uncached) path used by tests and the schedule explorer.
    """
    if isinstance(ks, str):
        ks = get_kernel_schedule(ks)
    src = generate_window_kernel(ks, tile_wj)
    namespace: dict = {}
    exec(compile(src, f"<vectorize:{ks.name}|wj{tile_wj}>", "exec"), namespace)
    return namespace, src
