"""Sequential demand-driven code generation (``generateWriteC`` analogue).

Emits a self-contained Python module implementing a mini-Alpha system as
memoized recursive functions — AlphaZ's "sequential code generation
[that] is useful to check the correctness of the program" (paper
§III-C3).  The generated source imports nothing from this package; loop
bounds for reductions are fully resolved affine expressions produced by
Fourier-Motzkin elimination at generation time.
"""

from __future__ import annotations

from ...semiring.semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES
from ..domain import Domain
from ..alpha.ast import BinOp, Case, Const, Equation, Expr, IndexExpr, Reduce, VarRef
from ..alpha.system import AlphaSystem
from .bounds import guard_expr, loop_bounds, py_affine

__all__ = ["generate_write_code", "compile_write", "reduce_identity"]

_REDUCE_PYOP = {"+": "{a} + {b}", "*": "{a} * {b}", "max": "max({a}, {b})", "min": "min({a}, {b})"}

#: reduction op -> the semiring whose ⊕-identity (or ⊗-identity, for
#: ``*``) seeds an accumulator of that op.  One algebra source of truth:
#: generated sequential checkers, the schedule generator and the
#: vectorized emitter all read their identities from the
#: :class:`~repro.semiring.semiring.Semiring` descriptors.
_REDUCE_IDENT_VALUE = {
    "+": PLUS_TIMES.zero,
    "*": PLUS_TIMES.one,
    "max": MAX_PLUS.zero,
    "min": MIN_PLUS.zero,
}


def _const_text(value: float) -> str:
    """Python literal for a float, handling the non-finite values."""
    v = float(value)
    if v != v or v in (float("inf"), float("-inf")):
        return f"float('{v}')"
    return repr(v)


def reduce_identity(op: str) -> str:
    """Source literal of the identity seeding a ``Reduce`` over ``op``."""
    try:
        return _const_text(_REDUCE_IDENT_VALUE[op])
    except KeyError:
        raise ValueError(f"no reduction identity for operator {op!r}") from None


_REDUCE_IDENT = {op: reduce_identity(op) for op in _REDUCE_IDENT_VALUE}


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self.tmp = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def fresh(self, prefix: str) -> str:
        self.tmp += 1
        return f"_{prefix}{self.tmp}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _gen_expr(e: _Emitter, system: AlphaSystem, expr: Expr) -> str:
    """Emit statements computing ``expr``; return the value expression."""
    if isinstance(expr, Const):
        return _const_text(expr.value)
    if isinstance(expr, IndexExpr):
        return f"({py_affine(expr.expr)})"
    if isinstance(expr, VarRef):
        args = ", ".join(py_affine(a) for a in expr.access.exprs)
        return f"_v_{expr.name}({args})"
    if isinstance(expr, BinOp):
        left = _gen_expr(e, system, expr.left)
        right = _gen_expr(e, system, expr.right)
        if expr.op in ("max", "min"):
            return f"{expr.op}({left}, {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Case):
        tmp = e.fresh("case")
        first = True
        for dom, branch in expr.branches:
            cond = guard_expr(dom.constraints)
            e.emit(f"{'if' if first else 'elif'} {cond}:")
            first = False
            e.indent += 1
            val = _gen_expr(e, system, branch)
            e.emit(f"{tmp} = {val}")
            e.indent -= 1
        e.emit("else:")
        e.indent += 1
        e.emit("raise ValueError('point outside every case branch')")
        e.indent -= 1
        return tmp
    if isinstance(expr, Reduce):
        acc = e.fresh("red")
        e.emit(f"{acc} = {_REDUCE_IDENT[expr.op]}")
        dom = expr.domain
        systems = dom._eliminated_systems()
        n_outer = dom.dim - len(expr.extra)
        depth0 = e.indent
        for level in range(n_outer, dom.dim):
            lo, hi = loop_bounds(dom, level, systems)
            e.emit(f"for {dom.names[level]} in range({lo}, ({hi}) + 1):")
            e.indent += 1
        guard = guard_expr(dom.constraints)
        if guard != "True":
            e.emit(f"if not ({guard}):")
            e.indent += 1
            e.emit("continue")
            e.indent -= 1
        body = _gen_expr(e, system, expr.body)
        update = _REDUCE_PYOP[expr.op].format(a=acc, b=body)
        e.emit(f"{acc} = {update}")
        e.indent = depth0
        return acc
    raise TypeError(f"cannot generate code for {type(expr).__name__}")


def generate_write_code(system: AlphaSystem, func_name: str | None = None) -> str:
    """Generate a self-contained Python module for ``system``.

    The module defines ``<func_name>(params, inputs)`` returning a dict of
    dense NumPy arrays, one per output variable (bounding-box layout, the
    AlphaZ default memory map).
    """
    system.validate()
    func_name = func_name or system.name
    e = _Emitter()
    e.emit('"""Auto-generated by repro.polyhedral.codegen.writec — do not edit."""')
    e.emit("import numpy as np")
    e.emit("import sys")
    e.emit()
    e.emit(f"def {func_name}(params, inputs):")
    e.indent += 1
    for p in system.params:
        e.emit(f"{p} = params['{p}']")
    e.emit("_memo = {}")
    e.emit("_limit = 10000 + 100 * " + " * ".join(
        [f"max({p}, 1)" for p in system.params] or ["1"]
    ))
    e.emit("if sys.getrecursionlimit() < _limit:")
    e.indent += 1
    e.emit("sys.setrecursionlimit(_limit)")
    e.indent -= 1
    e.emit()
    # input accessors
    for decl in system.inputs:
        e.emit(f"_src_{decl.name} = inputs['{decl.name}']")
        args = ", ".join(decl.domain.names)
        e.emit(f"def _v_{decl.name}({args}):")
        e.indent += 1
        e.emit(f"if callable(_src_{decl.name}):")
        e.indent += 1
        e.emit(f"return float(_src_{decl.name}({args}))")
        e.indent -= 1
        idx = ", ".join(decl.domain.names) if decl.domain.names else ""
        e.emit(f"return float(_src_{decl.name}[{idx}])")
        e.indent -= 1
        e.emit()
    # computed variables
    for eq in system.equations:
        args = ", ".join(eq.domain.names)
        e.emit(f"def _v_{eq.var}({args}):")
        e.indent += 1
        e.emit(f"_key = ('{eq.var}', {args})")
        e.emit("if _key in _memo:")
        e.indent += 1
        e.emit("return _memo[_key]")
        e.indent -= 1
        val = _gen_expr(e, system, eq.body)
        e.emit(f"_memo[_key] = {val}")
        e.emit("return _memo[_key]")
        e.indent -= 1
        e.emit()
    # outputs over bounding boxes
    e.emit("_out = {}")
    for decl in system.outputs:
        dom = decl.domain
        systems = dom._eliminated_systems()
        # emit a scan to fill the output array; shape from per-level upper
        # bound at the outermost enumeration (conservative: compute via
        # runtime max tracking)
        e.emit(f"_pts_{decl.name} = []")
        depth0 = e.indent
        for level in range(dom.dim):
            lo, hi = loop_bounds(dom, level, systems)
            e.emit(f"for {dom.names[level]} in range({lo}, ({hi}) + 1):")
            e.indent += 1
        guard = guard_expr(dom.constraints)
        if guard != "True":
            e.emit(f"if not ({guard}):")
            e.indent += 1
            e.emit("continue")
            e.indent -= 1
        tup = ", ".join(dom.names)
        e.emit(f"_pts_{decl.name}.append(({tup},))")
        e.indent = depth0
        e.emit(f"if _pts_{decl.name}:")
        e.indent += 1
        e.emit(
            f"_shape = tuple(max(p[d] for p in _pts_{decl.name}) + 1 "
            f"for d in range({dom.dim}))"
        )
        e.emit(f"_arr = np.full(_shape, np.nan)")
        e.emit(f"for _p in _pts_{decl.name}:")
        e.indent += 1
        e.emit(f"_arr[_p] = _v_{decl.name}(*_p)")
        e.indent -= 1
        e.emit(f"_out['{decl.name}'] = _arr")
        e.indent -= 1
        e.emit("else:")
        e.indent += 1
        e.emit(f"_out['{decl.name}'] = np.full((0,) * {dom.dim}, np.nan)")
        e.indent -= 1
    e.emit("return _out")
    return e.source()


def compile_write(system: AlphaSystem, func_name: str | None = None):
    """Generate, ``exec`` and return the module function plus its source."""
    src = generate_write_code(system, func_name)
    namespace: dict = {}
    exec(compile(src, f"<writec:{system.name}>", "exec"), namespace)
    return namespace[func_name or system.name], src
