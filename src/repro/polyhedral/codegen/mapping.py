"""Target-mapping directives: the user-facing AlphaZ command surface.

A :class:`TargetMapping` collects everything a compilation script (paper
Algorithm 2) specifies before code generation:

* ``setSpaceTimeMap`` — a schedule per variable; reduction variables get a
  *body* schedule (over equation + reduction indices) and an *init*
  schedule (when the accumulator is initialised);
* ``setMemoryMap`` — an affine map from domain points to array indices;
* ``setMemorySpace`` — several variables sharing one backing array;
* ``setParallel`` — parallel time dimensions (stored on the Schedule);
* ``setTiling`` — tile extents over a statement's time band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..affine import AffineMap
from ..schedule import Schedule

__all__ = ["TargetMapping", "MappingError"]


class MappingError(ValueError):
    """Raised for inconsistent mapping directives."""


@dataclass
class TargetMapping:
    """Mapping directives for one Alpha system."""

    system: str
    space_time: dict[str, Schedule] = field(default_factory=dict)
    init_time: dict[str, Schedule] = field(default_factory=dict)
    memory_maps: dict[str, AffineMap] = field(default_factory=dict)
    memory_spaces: dict[str, str] = field(default_factory=dict)
    tiling: dict[str, tuple[int, ...]] = field(default_factory=dict)

    # -- the AlphaZ-flavoured command API ---------------------------------

    def set_space_time_map(
        self,
        variable: str,
        body: str | Schedule,
        init: str | Schedule | None = None,
        parallel_dims: Sequence[int] = (),
    ) -> "TargetMapping":
        """``setSpaceTimeMap(prog, system, var, body, init)``.

        ``body`` schedules the (possibly reduction-extended) iteration
        space; ``init`` schedules accumulator initialisation for reduction
        variables (paper §III-C2).
        """
        if isinstance(body, str):
            body = Schedule.parse(variable, body, parallel_dims)
        elif parallel_dims:
            body = Schedule(variable, body.mapping, frozenset(parallel_dims))
        self.space_time[variable] = body
        if init is not None:
            if isinstance(init, str):
                init = Schedule.parse(variable, init, parallel_dims)
            if init.rank != body.rank:
                raise MappingError(
                    f"init schedule rank {init.rank} != body rank {body.rank} "
                    f"for {variable!r}"
                )
            self.init_time[variable] = init
        return self

    def set_parallel(self, variable: str, dims: Sequence[int]) -> "TargetMapping":
        """``setParallel``: mark time dimensions parallel."""
        sched = self.space_time.get(variable)
        if sched is None:
            raise MappingError(f"setParallel before setSpaceTimeMap for {variable!r}")
        self.space_time[variable] = Schedule(
            variable, sched.mapping, frozenset(dims)
        )
        return self

    def set_memory_map(self, variable: str, mapping: str | AffineMap) -> "TargetMapping":
        """``setMemoryMap``: domain point -> storage index."""
        if isinstance(mapping, str):
            mapping = AffineMap.parse(mapping)
        self.memory_maps[variable] = mapping
        return self

    def set_memory_space(self, space: str, *variables: str) -> "TargetMapping":
        """``setMemorySpace``: make ``variables`` share one array."""
        for v in variables:
            self.memory_spaces[v] = space
        return self

    def set_tiling(self, variable: str, extents: Sequence[int]) -> "TargetMapping":
        """Tile a statement's sequential time band (0 = untiled dim)."""
        if any(e < 0 for e in extents):
            raise MappingError(f"tile extents must be >= 0: {extents}")
        self.tiling[variable] = tuple(int(e) for e in extents)
        return self

    # -- queries ------------------------------------------------------------

    def schedule_rank(self) -> int:
        ranks = {s.rank for s in self.space_time.values()}
        if len(ranks) > 1:
            raise MappingError(
                f"all space-time maps must share one rank; got {sorted(ranks)}"
            )
        return ranks.pop() if ranks else 0

    def space_of(self, variable: str) -> str:
        """Backing-array name of a variable (itself unless shared)."""
        return self.memory_spaces.get(variable, variable)

    def validate(self, variables: Mapping[str, object]) -> None:
        unknown = set(self.space_time) - set(variables)
        if unknown:
            raise MappingError(f"schedules for unknown variables {sorted(unknown)}")
        self.schedule_rank()
