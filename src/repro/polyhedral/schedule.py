"""Multi-dimensional affine schedules (space-time maps).

A schedule assigns each iteration point of a statement a *time vector*;
execution order is the lexicographic order of time vectors.  This module
provides the :class:`Schedule` wrapper used to encode the paper's
Tables I-V, lexicographic comparison, and validity checking against a set
of dependences (see :mod:`repro.polyhedral.dependence`).

Following AlphaZ's ``setSpaceTimeMap`` convention, one or more dimensions
of the time vector may be declared *parallel*: points differing only in
parallel dimensions may run concurrently, so a dependence must be strictly
satisfied (producer lexicographically earlier) when restricted to the
**sequential** dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from .affine import AffineMap

__all__ = ["Schedule", "lex_less", "lex_compare"]


def lex_compare(a: Sequence[Fraction], b: Sequence[Fraction]) -> int:
    """-1 / 0 / +1 lexicographic comparison of equal-length vectors."""
    if len(a) != len(b):
        raise ValueError(f"cannot compare time vectors of ranks {len(a)}, {len(b)}")
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    return 0


def lex_less(a: Sequence[Fraction], b: Sequence[Fraction]) -> bool:
    """True when ``a`` precedes ``b`` lexicographically."""
    return lex_compare(a, b) < 0


@dataclass(frozen=True)
class Schedule:
    """A space-time map for one statement/variable.

    Parameters
    ----------
    statement: name of the variable / statement being scheduled.
    mapping: affine map from the statement's indices to the time vector.
    parallel_dims: indices (0-based) of time dimensions executed in
        parallel (AlphaZ ``setParallel``).
    """

    statement: str
    mapping: AffineMap
    parallel_dims: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "parallel_dims", frozenset(self.parallel_dims))
        for d in self.parallel_dims:
            if not 0 <= d < self.mapping.dim_out:
                raise ValueError(
                    f"parallel dim {d} out of range for rank-{self.mapping.dim_out} schedule"
                )

    @staticmethod
    def parse(
        statement: str, text: str, parallel_dims: Sequence[int] = ()
    ) -> "Schedule":
        """Build from the paper's mapping notation."""
        return Schedule(statement, AffineMap.parse(text), frozenset(parallel_dims))

    @property
    def rank(self) -> int:
        return self.mapping.dim_out

    def bind(self, params: "Mapping[str, int]") -> "Schedule":
        """Substitute parameter values into the time expressions.

        Schedules may reference size parameters (e.g. Table IV uses the
        constant ``M`` as a separator dimension); bind them before
        evaluating time vectors on concrete points.
        """
        from .affine import AffineExpr

        exprs = tuple(
            e.substitute({k: AffineExpr.constant(v) for k, v in params.items()})
            for e in self.mapping.exprs
        )
        return Schedule(
            self.statement,
            AffineMap(inputs=self.mapping.inputs, exprs=exprs),
            self.parallel_dims,
        )

    def time(self, point: Sequence[int]) -> tuple[Fraction, ...]:
        """Full time vector of an iteration point."""
        return self.mapping(*point)

    def sequential_time(self, point: Sequence[int]) -> tuple[Fraction, ...]:
        """Time vector restricted to the sequential dimensions."""
        t = self.mapping(*point)
        return tuple(v for i, v in enumerate(t) if i not in self.parallel_dims)

    def __str__(self) -> str:
        par = f" parallel={sorted(self.parallel_dims)}" if self.parallel_dims else ""
        return f"{self.statement}: {self.mapping}{par}"
