"""Dependences and schedule-legality checking.

A :class:`Dependence` records that computing ``consumer`` at instance
``consumer_map(z)`` reads ``producer`` at instance ``producer_map(z)``, for
every integer point ``z`` of a *dependence domain* (which typically spans
the consumer's indices plus any reduction indices).

A set of schedules is **legal** for a dependence when, at every point of
the dependence domain, the producer's sequential time vector is
lexicographically strictly earlier than the consumer's.  Legality is
verified by exhaustive enumeration for small parameter values (and by
random sampling for larger ones) — the standard testing-oracle approach
for a reproduction, in place of AlphaZ's symbolic verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .affine import AffineMap
from .domain import Domain
from .schedule import Schedule, lex_compare

__all__ = ["Dependence", "Violation", "check_legality", "check_all"]


@dataclass(frozen=True)
class Violation:
    """A witnessed ordering violation for one dependence."""

    dependence: str
    point: tuple[int, ...]
    producer_time: tuple
    consumer_time: tuple

    def __str__(self) -> str:
        return (
            f"{self.dependence} violated at z={self.point}: "
            f"producer time {self.producer_time} !< consumer time {self.consumer_time}"
        )


@dataclass(frozen=True)
class Dependence:
    """``consumer[consumer_map(z)]`` reads ``producer[producer_map(z)]``."""

    name: str
    consumer: str
    producer: str
    domain: Domain
    consumer_map: AffineMap
    producer_map: AffineMap

    def __post_init__(self) -> None:
        for m, role in ((self.consumer_map, "consumer"), (self.producer_map, "producer")):
            if tuple(m.inputs) != tuple(self.domain.names):
                raise ValueError(
                    f"{role}_map inputs {m.inputs} must match dependence "
                    f"domain indices {self.domain.names}"
                )

    def instances(
        self, params: Mapping[str, int]
    ) -> Iterable[tuple[tuple[int, ...], tuple, tuple]]:
        """Yield (z, producer_instance, consumer_instance) triples."""
        for z in self.domain.points(params):
            yield z, self.producer_map(*z), self.consumer_map(*z)


def check_legality(
    dep: Dependence,
    schedules: Mapping[str, Schedule],
    params: Mapping[str, int],
    max_points: int | None = None,
    rng: np.random.Generator | int | None = None,
    producer_schedules: Mapping[str, Schedule] | None = None,
) -> list[Violation]:
    """Return all (or up to ``max_points`` sampled) violations of ``dep``.

    An empty list means the schedule pair is legal for this dependence at
    the given parameter values.

    ``producer_schedules`` optionally overrides the schedule used when a
    variable acts as a *producer*.  Reduction variables need this: their
    entry in ``schedules`` is the accumulation-body schedule (over the
    extended index space), while reads of the finished value must be
    compared against the reduction's *completion* time.
    """
    s_cons = schedules[dep.consumer].bind(params)
    prod_sched = (producer_schedules or {}).get(dep.producer) or schedules.get(
        dep.producer
    )
    if prod_sched is None:
        # producer is an unscheduled input: available before time begins,
        # so the dependence is always satisfied
        return []
    s_prod = prod_sched.bind(params)
    if s_cons.rank != s_prod.rank:
        raise ValueError(
            f"schedules for {dep.consumer} and {dep.producer} have different "
            f"ranks ({s_cons.rank} vs {s_prod.rank}); AlphaZ requires equal ranks"
        )
    points = list(dep.domain.points(params))
    if max_points is not None and len(points) > max_points:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        idx = rng.choice(len(points), size=max_points, replace=False)
        points = [points[i] for i in idx]

    violations: list[Violation] = []
    for z in points:
        cons_inst = [int(v) for v in dep.consumer_map(*z)]
        prod_inst = [int(v) for v in dep.producer_map(*z)]
        t_cons = s_cons.sequential_time(cons_inst)
        t_prod = s_prod.sequential_time(prod_inst)
        # sequential projections may differ in rank if parallel dims differ;
        # compare on the common full-time rank minus union of parallel dims.
        if len(t_cons) != len(t_prod):
            par = s_cons.parallel_dims | s_prod.parallel_dims
            full_c = s_cons.time(cons_inst)
            full_p = s_prod.time(prod_inst)
            t_cons = tuple(v for i, v in enumerate(full_c) if i not in par)
            t_prod = tuple(v for i, v in enumerate(full_p) if i not in par)
        if lex_compare(t_prod, t_cons) >= 0:
            violations.append(
                Violation(dep.name, z, tuple(t_prod), tuple(t_cons))
            )
    return violations


def check_all(
    deps: Sequence[Dependence],
    schedules: Mapping[str, Schedule],
    params: Mapping[str, int],
    max_points_per_dep: int | None = 2000,
    rng: np.random.Generator | int | None = 0,
    producer_schedules: Mapping[str, Schedule] | None = None,
) -> list[Violation]:
    """Check every dependence; return the concatenated violation list."""
    out: list[Violation] = []
    for dep in deps:
        out.extend(
            check_legality(
                dep, schedules, params, max_points_per_dep, rng,
                producer_schedules=producer_schedules,
            )
        )
    return out
