"""Affine expressions and affine functions over named indices.

Everything in the polyhedral model — iteration domains, dependences,
schedules, memory maps — is built from integer affine forms

    c0 + c1*x1 + ... + cn*xn

over index and parameter names.  :class:`AffineExpr` stores the
coefficients sparsely by name; :class:`AffineMap` is a tuple of such
expressions, i.e. a function  Z^d -> Z^k.

Expressions support Python arithmetic and a tiny parser so the paper's
mapping notation ``(i1,j1,i2,j2 -> j1-i1, i1, j1, i2, j2)`` can be written
literally in :mod:`repro.core.alpha_model`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence, Union

Number = Union[int, Fraction]

__all__ = ["AffineExpr", "AffineMap", "var", "const"]


def _as_expr(x: "AffineExpr | int | Fraction") -> "AffineExpr":
    if isinstance(x, AffineExpr):
        return x
    if isinstance(x, (int, Fraction)):
        return AffineExpr(const=Fraction(x))
    raise TypeError(f"cannot treat {x!r} as an affine expression")


@dataclass(frozen=True)
class AffineExpr:
    """An affine form ``const + sum(coeffs[name] * name)``.

    Coefficients are exact rationals so Fourier-Motzkin elimination stays
    exact; in well-formed schedules and maps they are integers.
    """

    coeffs: Mapping[str, Fraction] = field(default_factory=dict)
    const: Fraction = Fraction(0)

    def __post_init__(self) -> None:
        clean = {
            name: Fraction(c) for name, c in self.coeffs.items() if Fraction(c) != 0
        }
        object.__setattr__(self, "coeffs", dict(sorted(clean.items())))
        object.__setattr__(self, "const", Fraction(self.const))

    # -- constructors ----------------------------------------------------

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        return AffineExpr(coeffs={name: Fraction(1)})

    @staticmethod
    def constant(value: int | Fraction) -> "AffineExpr":
        return AffineExpr(const=Fraction(value))

    @staticmethod
    def parse(text: str) -> "AffineExpr":
        """Parse e.g. ``"j1 - i1 + 2*k - 1"`` into an expression."""
        s = text.replace(" ", "")
        if not s:
            raise ValueError("empty affine expression")
        # tokenize into signed terms
        terms = re.findall(r"[+-]?[^+-]+", s)
        if "".join(terms) != s:
            raise ValueError(f"malformed affine expression {text!r}")
        expr = AffineExpr()
        for term in terms:
            sign = Fraction(1)
            if term.startswith("-"):
                sign, term = Fraction(-1), term[1:]
            elif term.startswith("+"):
                term = term[1:]
            if not term:
                raise ValueError(f"malformed term in {text!r}")
            if "*" in term:
                lhs, rhs = term.split("*", 1)
                if re.fullmatch(r"\d+", lhs):
                    coeff, name = Fraction(lhs), rhs
                elif re.fullmatch(r"\d+", rhs):
                    coeff, name = Fraction(rhs), lhs
                else:
                    raise ValueError(f"non-affine term {term!r} in {text!r}")
                if not re.fullmatch(r"[A-Za-z_]\w*", name):
                    raise ValueError(f"bad variable name {name!r} in {text!r}")
                expr = expr + AffineExpr(coeffs={name: sign * coeff})
            elif re.fullmatch(r"\d+", term):
                expr = expr + AffineExpr(const=sign * Fraction(term))
            elif re.fullmatch(r"[A-Za-z_]\w*", term):
                expr = expr + AffineExpr(coeffs={term: sign})
            else:
                raise ValueError(f"cannot parse term {term!r} in {text!r}")
        return expr

    # -- algebra ---------------------------------------------------------

    def __add__(self, other) -> "AffineExpr":
        o = _as_expr(other)
        coeffs = dict(self.coeffs)
        for name, c in o.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return AffineExpr(coeffs=coeffs, const=self.const + o.const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(
            coeffs={n: -c for n, c in self.coeffs.items()}, const=-self.const
        )

    def __sub__(self, other) -> "AffineExpr":
        return self + (-_as_expr(other))

    def __rsub__(self, other) -> "AffineExpr":
        return _as_expr(other) + (-self)

    def __mul__(self, k) -> "AffineExpr":
        if isinstance(k, AffineExpr):
            if not k.coeffs:
                k = k.const
            elif not self.coeffs:
                return k * self.const
            else:
                raise TypeError("product of two non-constant affine expressions")
        k = Fraction(k)
        return AffineExpr(
            coeffs={n: c * k for n, c in self.coeffs.items()}, const=self.const * k
        )

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, (AffineExpr, int, Fraction)):
            return NotImplemented
        o = _as_expr(other)
        return self.coeffs == o.coeffs and self.const == o.const

    def __hash__(self) -> int:
        return hash((tuple(self.coeffs.items()), self.const))

    # -- evaluation ------------------------------------------------------

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def coeff(self, name: str) -> Fraction:
        return self.coeffs.get(name, Fraction(0))

    def evaluate(self, env: Mapping[str, int | Fraction]) -> Fraction:
        """Value of the expression under the binding ``env``."""
        total = self.const
        for name, c in self.coeffs.items():
            if name not in env:
                raise KeyError(f"unbound index {name!r} in {self}")
            total += c * Fraction(env[name])
        return total

    def substitute(self, bindings: Mapping[str, "AffineExpr | int"]) -> "AffineExpr":
        """Replace each named index by an affine expression."""
        out = AffineExpr(const=self.const)
        for name, c in self.coeffs.items():
            repl = bindings.get(name)
            if repl is None:
                out = out + AffineExpr(coeffs={name: c})
            else:
                out = out + _as_expr(repl) * c
        return out

    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self.coeffs.items():
            if c == 1:
                parts.append(f"+{name}")
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{'+' if c > 0 else '-'}{abs(c)}*{name}")
        if self.const or not parts:
            parts.append(f"{'+' if self.const >= 0 else '-'}{abs(self.const)}")
        s = "".join(parts)
        return s[1:] if s.startswith("+") else s


def var(name: str) -> AffineExpr:
    """Shorthand for :meth:`AffineExpr.variable`."""
    return AffineExpr.variable(name)


def const(value: int) -> AffineExpr:
    """Shorthand for :meth:`AffineExpr.constant`."""
    return AffineExpr.constant(value)


@dataclass(frozen=True)
class AffineMap:
    """An affine function ``(x1..xd) -> (e1..ek)`` with named inputs."""

    inputs: tuple[str, ...]
    exprs: tuple[AffineExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(
            self, "exprs", tuple(_as_expr(e) for e in self.exprs)
        )

    @staticmethod
    def parse(text: str) -> "AffineMap":
        """Parse mapping notation, e.g. ``"(i,j,k -> i, k, j-1)"``."""
        s = text.strip()
        if s.startswith("(") and s.endswith(")"):
            s = s[1:-1]
        if "->" not in s:
            raise ValueError(f"mapping {text!r} must contain '->'")
        lhs, rhs = s.split("->", 1)
        inputs = tuple(t.strip() for t in lhs.split(",") if t.strip())
        for name in inputs:
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                raise ValueError(f"bad input name {name!r} in {text!r}")
        exprs = tuple(AffineExpr.parse(t) for t in rhs.split(",") if t.strip())
        if not exprs:
            raise ValueError(f"mapping {text!r} has no output expressions")
        return AffineMap(inputs=inputs, exprs=exprs)

    @property
    def dim_in(self) -> int:
        return len(self.inputs)

    @property
    def dim_out(self) -> int:
        return len(self.exprs)

    def __call__(self, *point: int) -> tuple[Fraction, ...]:
        if len(point) != self.dim_in:
            raise ValueError(
                f"map expects {self.dim_in} inputs {self.inputs}, got {len(point)}"
            )
        env = dict(zip(self.inputs, point))
        return tuple(e.evaluate(env) for e in self.exprs)

    def apply_env(self, env: Mapping[str, int | Fraction]) -> tuple[Fraction, ...]:
        """Apply using a name->value environment (may contain parameters)."""
        return tuple(e.evaluate(env) for e in self.exprs)

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """``self ∘ inner``: first apply ``inner``, then ``self``."""
        if self.dim_in != inner.dim_out:
            raise ValueError(
                f"cannot compose: inner produces {inner.dim_out} values, "
                f"outer expects {self.dim_in}"
            )
        bindings = dict(zip(self.inputs, inner.exprs))
        return AffineMap(
            inputs=inner.inputs,
            exprs=tuple(e.substitute(bindings) for e in self.exprs),
        )

    def __str__(self) -> str:
        return f"({', '.join(self.inputs)} -> {', '.join(map(str, self.exprs))})"
