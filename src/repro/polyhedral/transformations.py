"""Polyhedral program transformations beyond scheduling.

AlphaZ's transformation catalogue includes, besides the mapping
directives, re-indexing transformations.  This module implements the
ones the paper's workflow touches:

* :func:`change_of_basis` — AlphaZ's ``changeOfBasis``: re-index one
  variable through an invertible affine map (the tool of choice for
  skewing a variable's memory/iteration space; the paper's memory-map
  option 2 ``(i2, j2) -> (i2, j2 - i2)`` is exactly such a basis change);
* :func:`permute_schedule` / :func:`skew_schedule` — derived-schedule
  helpers for exploring the alternatives §IV-A enumerates ("there are
  many ways to formulate the next dimension ... other choices can be
  viewed as loop permutations");
* :func:`to_alphabets` — pretty-print a system back to the concrete
  ``alphabets`` syntax (round-trips through the parser).
"""

from __future__ import annotations

from dataclasses import replace

from .affine import AffineExpr, AffineMap, var
from .alpha.ast import BinOp, Case, Const, Equation, Expr, IndexExpr, Reduce, VarRef
from .alpha.system import AlphaSystem, SystemError, VarDecl
from .domain import Constraint, Domain
from .schedule import Schedule

__all__ = [
    "change_of_basis",
    "permute_schedule",
    "skew_schedule",
    "to_alphabets",
]


def _is_identity(m: AffineMap, names: tuple[str, ...]) -> bool:
    if m.dim_out != len(names):
        return False
    return all(e == var(n) for e, n in zip(m.exprs, names))


def _subst_domain(
    dom: Domain, new_names: tuple[str, ...], bindings: dict[str, AffineExpr]
) -> Domain:
    constraints = tuple(
        Constraint(c.expr.substitute(bindings), c.kind) for c in dom.constraints
    )
    # partial-scope guards (e.g. a case branch over two of four indices)
    # may now reference substituted names outside new_names: widen
    referenced: set[str] = set()
    for c in constraints:
        referenced |= c.expr.names
    missing = tuple(
        n for n in sorted(referenced - set(new_names) - set(dom.params))
    )
    return Domain(
        names=tuple(new_names) + missing,
        constraints=constraints,
        params=dom.params,
    )


def _rewrite_expr(
    expr: Expr,
    target: str,
    forward: AffineMap,
    bindings: dict[str, AffineExpr],
    scope_map: dict[tuple[str, ...], tuple[str, ...]],
) -> Expr:
    """Rewrite an expression of the re-indexed variable's equation.

    ``bindings`` substitutes the old indices by inverse expressions over
    the new ones; accesses *to* the target variable additionally compose
    with the forward map.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, IndexExpr):
        return IndexExpr(expr.expr.substitute(bindings))
    if isinstance(expr, VarRef):
        new_inputs = scope_map.get(tuple(expr.access.inputs), tuple(expr.access.inputs))
        exprs = tuple(e.substitute(bindings) for e in expr.access.exprs)
        if expr.name == target:
            fw_bind = dict(zip(forward.inputs, exprs))
            exprs = tuple(e.substitute(fw_bind) for e in forward.exprs)
        return VarRef(expr.name, AffineMap(inputs=new_inputs, exprs=exprs))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rewrite_expr(expr.left, target, forward, bindings, scope_map),
            _rewrite_expr(expr.right, target, forward, bindings, scope_map),
        )
    if isinstance(expr, Case):
        return Case(
            tuple(
                (
                    _subst_domain(
                        d, scope_map.get(tuple(d.names), tuple(d.names)), bindings
                    ),
                    _rewrite_expr(e, target, forward, bindings, scope_map),
                )
                for d, e in expr.branches
            )
        )
    if isinstance(expr, Reduce):
        old_names = tuple(expr.domain.names)
        new_names = scope_map.get(old_names, old_names)
        return Reduce(
            op=expr.op,
            extra=expr.extra,
            domain=_subst_domain(expr.domain, new_names, bindings),
            body=_rewrite_expr(expr.body, target, forward, bindings, scope_map),
        )
    raise TypeError(f"cannot rewrite {type(expr).__name__}")


def change_of_basis(
    system: AlphaSystem,
    variable: str,
    new_names: tuple[str, ...],
    forward: AffineMap,
    inverse: AffineMap,
) -> AlphaSystem:
    """Re-index ``variable`` through an invertible affine map.

    Parameters
    ----------
    new_names: the re-indexed variable's index names.
    forward: old indices -> new coordinates (inputs are the old names).
    inverse: new indices -> old coordinates (inputs are ``new_names``).

    Both directions are verified symbolically to compose to the
    identity, as AlphaZ requires the map to be invertible.  The
    variable's domain and defining equation move to the new coordinates;
    every *read* of the variable composes its access with ``forward``.
    Semantics are preserved (outputs of the system are unchanged unless
    the re-indexed variable is itself an output, whose coordinates then
    change as requested).
    """
    decl = system.declaration(variable)
    old_names = tuple(decl.domain.names)
    if tuple(forward.inputs) != old_names:
        raise SystemError(
            f"forward map inputs {forward.inputs} must be {old_names}"
        )
    if tuple(inverse.inputs) != tuple(new_names):
        raise SystemError(
            f"inverse map inputs {inverse.inputs} must be {new_names}"
        )
    if not _is_identity(inverse.compose(forward), old_names):
        raise SystemError("inverse(forward(x)) != x: map is not invertible")
    if not _is_identity(forward.compose(inverse), tuple(new_names)):
        raise SystemError("forward(inverse(y)) != y: map is not invertible")

    bindings = dict(zip(old_names, inverse.exprs))
    identity_bindings: dict[str, AffineExpr] = {}
    new_domain = _subst_domain(decl.domain, tuple(new_names), bindings)

    out = AlphaSystem(
        name=system.name,
        params=system.params,
        subsystems=dict(system.subsystems),
    )
    for kind in ("inputs", "outputs", "locals"):
        for d in getattr(system, kind):
            getattr(out, kind).append(
                VarDecl(d.name, new_domain if d.name == variable else d.domain, d.dtype)
            )

    for eq in system.equations:
        if eq.var == variable:
            scope_map = {old_names: tuple(new_names)}
            # reduction scopes extend the equation scope
            for e in _walk_reduce_scopes(eq.body):
                if tuple(e[: len(old_names)]) == old_names:
                    scope_map[e] = tuple(new_names) + tuple(e[len(old_names) :])
            body = _rewrite_expr(eq.body, variable, forward, bindings, scope_map)
            out.equations.append(Equation(variable, new_domain, body))
        else:
            body = _rewrite_expr(eq.body, variable, forward, identity_bindings, {})
            out.equations.append(replace(eq, body=body))
    out.validate()
    return out


def _walk_reduce_scopes(expr: Expr):
    if isinstance(expr, Reduce):
        yield tuple(expr.domain.names)
        yield from _walk_reduce_scopes(expr.body)
    elif isinstance(expr, BinOp):
        yield from _walk_reduce_scopes(expr.left)
        yield from _walk_reduce_scopes(expr.right)
    elif isinstance(expr, Case):
        for _, e in expr.branches:
            yield from _walk_reduce_scopes(e)


def permute_schedule(schedule: Schedule, perm: tuple[int, ...]) -> Schedule:
    """Permute the time dimensions of a schedule (loop interchange)."""
    if sorted(perm) != list(range(schedule.rank)):
        raise ValueError(
            f"perm must be a permutation of 0..{schedule.rank - 1}, got {perm}"
        )
    exprs = tuple(schedule.mapping.exprs[p] for p in perm)
    parallel = frozenset(perm.index(d) for d in schedule.parallel_dims)
    return Schedule(
        schedule.statement,
        AffineMap(inputs=schedule.mapping.inputs, exprs=exprs),
        parallel,
    )


def skew_schedule(schedule: Schedule, dim: int, source: int, factor: int = 1) -> Schedule:
    """Skew one time dimension by a multiple of another:
    ``t[dim] += factor * t[source]`` (always legality-preserving)."""
    if not 0 <= dim < schedule.rank or not 0 <= source < schedule.rank:
        raise ValueError(f"dims out of range for rank {schedule.rank}")
    if dim == source:
        raise ValueError("cannot skew a dimension by itself")
    exprs = list(schedule.mapping.exprs)
    exprs[dim] = exprs[dim] + exprs[source] * factor
    return Schedule(
        schedule.statement,
        AffineMap(inputs=schedule.mapping.inputs, exprs=tuple(exprs)),
        schedule.parallel_dims,
    )


# ---------------------------------------------------------------------------
# pretty-printing back to alphabets syntax
# ---------------------------------------------------------------------------

def _expr_text(expr: Expr) -> str:
    if isinstance(expr, Const):
        v = float(expr.value)
        if v != v or v in (float("inf"), float("-inf")):
            raise ValueError(
                "non-finite constants are not expressible in alphabets "
                "syntax; restructure the case branches instead"
            )
        if v == int(v) and abs(v) < 1e15:
            iv = int(v)
            return str(iv) if iv >= 0 else f"(0 - {-iv})"
        return repr(v)
    if isinstance(expr, IndexExpr):
        return f"({expr.expr})"
    if isinstance(expr, VarRef):
        args = ", ".join(str(e) for e in expr.access.exprs)
        return f"{expr.name}[{args}]"
    if isinstance(expr, BinOp):
        if expr.op in ("max", "min"):
            return f"{expr.op}({_expr_text(expr.left)}, {_expr_text(expr.right)})"
        return f"({_expr_text(expr.left)} {expr.op} {_expr_text(expr.right)})"
    if isinstance(expr, Reduce):
        dom = _domain_text(expr.domain)
        return (
            f"reduce({expr.op}, [{', '.join(expr.extra)}] in {dom}, "
            f"{_expr_text(expr.body)})"
        )
    if isinstance(expr, Case):
        branches = " ".join(
            f"{_domain_text(d)} : {_expr_text(e)};" for d, e in expr.branches
        )
        return f"case {{ {branches} }}"
    raise TypeError(f"cannot print {type(expr).__name__}")


def _domain_text(dom: Domain) -> str:
    body = " && ".join(
        f"{c.expr} {'==' if c.kind == 'eq' else '>='} 0" for c in dom.constraints
    )
    return f"{{{', '.join(dom.names)} | {body}}}" if body else f"{{{', '.join(dom.names)}}}"


def to_alphabets(system: AlphaSystem) -> str:
    """Render a system in concrete ``alphabets`` syntax.

    The output parses back through :func:`repro.polyhedral.alpha.parser
    .parse_system` to an equivalent system (round-trip tested).
    """
    lines = [f"affine {system.name} {{{', '.join(system.params)}}}"]
    for label, decls in (
        ("input", system.inputs),
        ("output", system.outputs),
        ("local", system.locals),
    ):
        if decls:
            lines.append(label)
            for d in decls:
                lines.append(f"  {d.dtype} {d.name} {_domain_text(d.domain)};")
    lines.append("let")
    for eq in system.equations:
        lines.append(
            f"  {eq.var}[{', '.join(eq.domain.names)}] = {_expr_text(eq.body)};"
        )
    return "\n".join(lines) + "\n"
