"""Weighted Nussinov folding: the single-strand ``S`` tables of BPMax.

BPMax consumes two precomputed single-strand tables ``S1`` and ``S2``
(one per input sequence).  ``S[i, j]`` is the maximum total pair weight
achievable by a pseudoknot-free folding of the subsequence ``i..j``
(inclusive), under the weighted base-pair counting model:

    S[i, j] = max( S[i+1, j],
                   S[i, j-1],
                   S[i+1, j-1] + score(i, j),
                   max_{i <= k < j} S[i, k] + S[k+1, j] )

with ``S[i, j] = 0`` whenever ``j <= i`` under the default ``min_loop=0``
model (a single base cannot pair with itself).

Two implementations are provided:

* :func:`nussinov_reference` — direct pure-Python loop nest (oracle);
* :func:`nussinov` — diagonal-by-diagonal NumPy vectorized version used by
  every BPMax engine.

Both return the full dense ``(n, n)`` float32 table (zero below the
diagonal) so BPMax kernels can index it without branching.
"""

from __future__ import annotations

import numpy as np

from .scoring import DEFAULT_MODEL, ScoringModel
from .sequence import RnaSequence

__all__ = [
    "nussinov",
    "nussinov_logspace",
    "nussinov_reference",
    "nussinov_traceback",
    "pairs_to_dotbracket",
]


def _codes_of(seq: RnaSequence | str | np.ndarray) -> np.ndarray:
    if isinstance(seq, RnaSequence):
        return seq.codes
    if isinstance(seq, str):
        return RnaSequence(seq).codes
    return np.asarray(seq, dtype=np.int8)


def nussinov_reference(
    seq: RnaSequence | str | np.ndarray, model: ScoringModel = DEFAULT_MODEL
) -> np.ndarray:
    """Pure-Python weighted Nussinov table (correctness oracle)."""
    codes = _codes_of(seq)
    n = len(codes)
    w = model.score_table(codes)
    s = np.zeros((n, n), dtype=np.float32)
    for span in range(1, n):
        for i in range(0, n - span):
            j = i + span
            best = max(s[i + 1, j], s[i, j - 1])
            if span >= 1:
                inner = s[i + 1, j - 1] if span >= 2 else 0.0
                best = max(best, inner + w[i, j])
            for k in range(i, j):
                best = max(best, s[i, k] + s[k + 1, j])
            s[i, j] = best
    return s


def nussinov(
    seq: RnaSequence | str | np.ndarray, model: ScoringModel = DEFAULT_MODEL
) -> np.ndarray:
    """Vectorized weighted Nussinov table.

    Runs diagonal by diagonal; for each span the split reduction
    ``max_k S[i,k] + S[k+1,j]`` is evaluated as elementwise maxima over
    shifted diagonals, giving O(n^2) NumPy calls for the O(n^3) work.
    """
    codes = _codes_of(seq)
    n = len(codes)
    w = model.score_table(codes)
    s = np.zeros((n, n), dtype=np.float32)
    if n < 2:
        return s
    # diag[d] holds S[i, i+d] for i = 0 .. n-1-d
    diags: list[np.ndarray] = [np.zeros(n, dtype=np.float32)]
    for span in range(1, n):
        m = n - span
        i = np.arange(m)
        j = i + span
        # pair closing term: S[i+1, j-1] + w[i, j]
        if span >= 2:
            cur = diags[span - 2][1 : m + 1] + w[i, j]
        else:
            cur = w[i, j].copy()
        # split term: for d in 0..span-1, S[i, i+d] + S[i+d+1, j]
        for d in range(span):
            left = diags[d][:m]
            right = diags[span - d - 1][d + 1 : d + 1 + m]
            np.maximum(cur, left + right, out=cur)
        diags.append(cur.astype(np.float32))
        s[i, j] = diags[span]
    return s


def nussinov_logspace(
    seq: RnaSequence | str | np.ndarray, model: ScoringModel = DEFAULT_MODEL
) -> np.ndarray:
    """Log-sum-exp Nussinov table: the single-strand ``S`` of BPPart.

    The exact same diagonal-by-diagonal recurrence as :func:`nussinov`
    with ``max`` replaced by ``logaddexp`` — ``S[i, j]`` becomes the log
    of a sum of ``exp(pair weights)`` over *derivations* of the
    recurrence rather than the best score.  This vectorized form (pair
    closing + split decomposition, unpaired bases covered by the
    ``k = i`` / ``k = j - 1`` splits) is the **canonical** log-space
    recurrence: the split decomposition is ambiguous (one structure can
    have many derivations), so every consumer — the reference
    ``bppart_recursive`` and all engine fast paths — must sum over this
    exact candidate set for their values to agree.  Empty windows
    (``j <= i``) hold ``0.0 = log 1``: one empty derivation.

    Returned in float64: log-sum-exp is not exact, and the corpus
    tolerance (1e-9) is unreachable in float32.
    """
    codes = _codes_of(seq)
    n = len(codes)
    w = model.score_table(codes).astype(np.float64)
    s = np.zeros((n, n), dtype=np.float64)
    if n < 2:
        return s
    # diag[d] holds S[i, i+d] for i = 0 .. n-1-d
    diags: list[np.ndarray] = [np.zeros(n, dtype=np.float64)]
    for span in range(1, n):
        m = n - span
        i = np.arange(m)
        j = i + span
        # pair closing term: S[i+1, j-1] + w[i, j]
        if span >= 2:
            cur = diags[span - 2][1 : m + 1] + w[i, j]
        else:
            cur = w[i, j].copy()
        # split term: for d in 0..span-1, S[i, i+d] + S[i+d+1, j]
        for d in range(span):
            left = diags[d][:m]
            right = diags[span - d - 1][d + 1 : d + 1 + m]
            np.logaddexp(cur, left + right, out=cur)
        diags.append(cur)
        s[i, j] = cur
    return s


def nussinov_traceback(
    seq: RnaSequence | str | np.ndarray,
    s: np.ndarray | None = None,
    model: ScoringModel = DEFAULT_MODEL,
) -> list[tuple[int, int]]:
    """Recover one optimal set of intramolecular pairs from the S table."""
    codes = _codes_of(seq)
    n = len(codes)
    if s is None:
        s = nussinov(codes, model)
    w = model.score_table(codes)
    pairs: list[tuple[int, int]] = []
    stack: list[tuple[int, int]] = [(0, n - 1)] if n > 1 else []
    while stack:
        i, j = stack.pop()
        if j <= i:
            continue
        target = s[i, j]
        if target == s[i + 1, j]:
            stack.append((i + 1, j))
            continue
        if target == s[i, j - 1]:
            stack.append((i, j - 1))
            continue
        inner = s[i + 1, j - 1] if j - i >= 2 else 0.0
        if w[i, j] > 0 and target == inner + w[i, j]:
            pairs.append((i, j))
            stack.append((i + 1, j - 1))
            continue
        for k in range(i, j):
            if target == s[i, k] + s[k + 1, j]:
                stack.append((i, k))
                stack.append((k + 1, j))
                break
        else:  # pragma: no cover - table inconsistent with recurrence
            raise AssertionError(f"traceback failed at window ({i}, {j})")
    return sorted(pairs)


def pairs_to_dotbracket(n: int, pairs: list[tuple[int, int]]) -> str:
    """Render a pair list as dot-bracket notation of length ``n``."""
    out = ["."] * n
    for i, j in pairs:
        if not (0 <= i < j < n):
            raise ValueError(f"pair ({i}, {j}) out of range for length {n}")
        if out[i] != "." or out[j] != ".":
            raise ValueError(f"pair ({i}, {j}) conflicts with another pair")
        out[i], out[j] = "(", ")"
    return "".join(out)
