"""RNA nucleotide alphabet: validation, encoding and complement rules.

The BPMax base-pair counting model recognises the canonical Watson-Crick
pairs A-U and G-C plus the wobble pair G-U.  Sequences are stored internally
as small-integer codes so that scoring tables can be precomputed as dense
NumPy lookup matrices.
"""

from __future__ import annotations

import numpy as np

from ..robust.errors import InvalidSequenceError

__all__ = [
    "NUCLEOTIDES",
    "NUC_TO_CODE",
    "CODE_TO_NUC",
    "CANONICAL_PAIRS",
    "InvalidSequenceError",
    "normalize",
    "encode",
    "decode",
    "can_pair",
    "pair_strength",
]

#: Canonical nucleotide ordering used for integer encoding.
NUCLEOTIDES: str = "ACGU"

#: Map from nucleotide character to its integer code.
NUC_TO_CODE: dict[str, int] = {c: i for i, c in enumerate(NUCLEOTIDES)}

#: Map from integer code back to the nucleotide character.
CODE_TO_NUC: dict[int, str] = {i: c for i, c in enumerate(NUCLEOTIDES)}

#: The set of unordered pairs that can form a bond, with their
#: hydrogen-bond counts (the default weights of the base-pair counting
#: model: G-C forms 3 hydrogen bonds, A-U forms 2, G-U wobble counts 1).
CANONICAL_PAIRS: dict[frozenset[str], int] = {
    frozenset("GC"): 3,
    frozenset("AU"): 2,
    frozenset("GU"): 1,
}


def normalize(seq: str) -> str:
    """Return ``seq`` upper-cased with DNA thymine mapped to uracil.

    Raises :class:`InvalidSequenceError` naming the first offending
    character and its position for any other non-ACGU character.
    """
    s = seq.strip().upper().replace("T", "U")
    valid = set(NUCLEOTIDES)
    for pos, c in enumerate(s):
        if c not in valid:
            raise InvalidSequenceError(
                f"invalid nucleotide {c!r} at position {pos} "
                f"in sequence {seq[:30]!r}"
            )
    return s


def encode(seq: str) -> np.ndarray:
    """Encode a (already valid) RNA string as an ``int8`` code array."""
    s = normalize(seq)
    return np.frombuffer(
        bytes(NUC_TO_CODE[c] for c in s), dtype=np.int8
    ).copy()


def decode(codes: np.ndarray) -> str:
    """Inverse of :func:`encode`."""
    return "".join(CODE_TO_NUC[int(c)] for c in codes)


def can_pair(a: str, b: str) -> bool:
    """True when nucleotides ``a`` and ``b`` can form a canonical/wobble pair."""
    return frozenset((a.upper(), b.upper())) in CANONICAL_PAIRS


def pair_strength(a: str, b: str) -> int:
    """Hydrogen-bond count of the pair ``a``-``b`` (0 when they cannot pair)."""
    return CANONICAL_PAIRS.get(frozenset((a.upper(), b.upper())), 0)
