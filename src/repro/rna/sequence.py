"""RNA sequence objects, random generation and FASTA I/O."""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..robust.errors import InvalidSequenceError
from .alphabet import NUCLEOTIDES, decode, encode, normalize

__all__ = [
    "RnaSequence",
    "random_sequence",
    "random_pair",
    "read_fasta",
    "write_fasta",
]


@dataclass(frozen=True)
class RnaSequence:
    """An immutable RNA strand with cached integer encoding.

    Behaves like a string for indexing/length while exposing ``codes`` for
    numeric kernels.
    """

    seq: str
    name: str = ""
    _codes: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        normalized = normalize(self.seq)
        if not normalized:
            label = f" {self.name!r}" if self.name else ""
            raise InvalidSequenceError(
                f"empty sequence{label}: an RNA strand must be non-empty"
            )
        object.__setattr__(self, "seq", normalized)
        object.__setattr__(self, "_codes", encode(self.seq))

    @property
    def codes(self) -> np.ndarray:
        """int8 code array (A=0, C=1, G=2, U=3)."""
        return self._codes

    def __len__(self) -> int:
        return len(self.seq)

    def __getitem__(self, i: int | slice) -> str:
        return self.seq[i]

    def __iter__(self) -> Iterator[str]:
        return iter(self.seq)

    def __str__(self) -> str:
        return self.seq

    def reversed(self) -> "RnaSequence":
        """The 3'->5' reversal of this strand."""
        return RnaSequence(self.seq[::-1], name=f"{self.name}|rev" if self.name else "")

    @classmethod
    def from_codes(cls, codes: np.ndarray, name: str = "") -> "RnaSequence":
        return cls(decode(codes), name=name)


def random_sequence(
    length: int,
    rng: np.random.Generator | int | None = None,
    gc_content: float = 0.5,
    name: str = "",
) -> RnaSequence:
    """Generate a random RNA strand.

    Parameters
    ----------
    length: strand length (>= 1; empty strands are invalid inputs).
    rng: a Generator, a seed, or None for a fresh default generator.
    gc_content: expected fraction of G+C nucleotides.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    # order ACGU: A and U share (1-gc)/2 each, C and G share gc/2 each.
    p = np.array(
        [(1 - gc_content) / 2, gc_content / 2, gc_content / 2, (1 - gc_content) / 2]
    )
    codes = rng.choice(len(NUCLEOTIDES), size=length, p=p).astype(np.int8)
    return RnaSequence.from_codes(codes, name=name)


def random_pair(
    n: int,
    m: int,
    rng: np.random.Generator | int | None = None,
    gc_content: float = 0.5,
) -> tuple[RnaSequence, RnaSequence]:
    """A pair of random strands of lengths ``n`` and ``m`` (one RRI input)."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return (
        random_sequence(n, rng, gc_content, name=f"rand{n}_a"),
        random_sequence(m, rng, gc_content, name=f"rand{m}_b"),
    )


def read_fasta(source: str | Path | io.TextIOBase) -> list[RnaSequence]:
    """Parse a FASTA file (or file-like / literal text) into sequences."""
    if isinstance(source, io.TextIOBase):
        text = source.read()
    else:
        p = Path(source)
        if p.exists():
            text = p.read_text()
        elif isinstance(source, str) and source.lstrip().startswith(">"):
            text = source
        else:
            raise FileNotFoundError(source)

    records: list[RnaSequence] = []
    name: str | None = None
    chunks: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                records.append(RnaSequence("".join(chunks), name=name))
            name = line[1:].strip()
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA data must begin with a '>' header line")
            chunks.append(line)
    if name is not None:
        records.append(RnaSequence("".join(chunks), name=name))
    return records


def write_fasta(
    sequences: Iterable[RnaSequence], dest: str | Path, width: int = 70
) -> None:
    """Write sequences to ``dest`` in FASTA format."""
    lines: list[str] = []
    for idx, s in enumerate(sequences):
        lines.append(f">{s.name or f'seq{idx}'}")
        for start in range(0, len(s.seq), width):
            lines.append(s.seq[start : start + width])
    Path(dest).write_text("\n".join(lines) + "\n")
