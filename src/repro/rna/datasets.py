"""Bundled demonstration sequences.

Small RNA / target fragments for examples and tests.  These are
*illustrative fragments patterned after well-studied bacterial
sRNA-target systems* (antisense regulators such as CopA/CopT and
DsrA/rpoS motivate RRI tools) — they are constructed for demonstration,
**not** curated database entries; use your own FASTA files for real
analyses (``python -m repro run pair.fasta --fasta``).

Each entry pairs a short, largely unstructured regulator fragment with a
target fragment containing a complementary site, so the examples and the
windowed scanner have realistic shapes to work with.
"""

from __future__ import annotations

from .sequence import RnaSequence

__all__ = ["DEMO_PAIRS", "demo_pair", "list_demo_pairs"]


def _rc(seq: str) -> str:
    comp = {"A": "U", "U": "A", "G": "C", "C": "G"}
    return "".join(comp[c] for c in reversed(seq))


_COPA_SEED = "CCUUUCCUUCU"  # antisense-style seed, pyrimidine-rich
_DSRA_SEED = "CUUCCUCCAUC"
_OXYS_SEED = "CCUCCAUCCCU"

#: name -> (short regulator fragment, target fragment with planted site)
DEMO_PAIRS: dict[str, tuple[RnaSequence, RnaSequence]] = {
    "copA-copT": (
        RnaSequence(_COPA_SEED, name="copA-like seed"),
        RnaSequence(
            "GGAAUUCGAA" + _rc(_COPA_SEED) + "AGCAUCCGGU",
            name="copT-like site",
        ),
    ),
    "dsrA-rpoS": (
        RnaSequence(_DSRA_SEED, name="dsrA-like seed"),
        RnaSequence(
            "AAUGGCAGUA" + _rc(_DSRA_SEED) + "UCCAGGAAUC",
            name="rpoS-like leader",
        ),
    ),
    "oxyS-fhlA": (
        RnaSequence(_OXYS_SEED, name="oxyS-like seed"),
        RnaSequence(
            "GCCAGAGUUA" + _rc(_OXYS_SEED) + "CAAGGUUGCA",
            name="fhlA-like site",
        ),
    ),
}


def list_demo_pairs() -> list[str]:
    """Names of the bundled demonstration pairs."""
    return sorted(DEMO_PAIRS)


def demo_pair(name: str) -> tuple[RnaSequence, RnaSequence]:
    """Look up one demonstration pair by name."""
    try:
        return DEMO_PAIRS[name]
    except KeyError:
        raise KeyError(
            f"unknown demo pair {name!r}; available: {list_demo_pairs()}"
        ) from None
