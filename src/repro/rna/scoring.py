"""Weighted base-pair scoring model for BPMax.

BPMax (Ebrahimpour-Boroojeny et al.) replaces a full thermodynamic energy
model with *weighted base-pair counting*: every admissible pair contributes
a fixed positive weight (by default its hydrogen-bond count) and the DP
maximises the total weight.  Two score functions appear in the recurrence:

* ``score(i, j)``  — weight of an *intramolecular* pair inside one strand;
* ``iscore(i1, i2)`` — weight of an *intermolecular* pair between strands.

Both are precomputed as dense float32 matrices so the hot DP loops never
touch Python-level dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import NUCLEOTIDES, NUC_TO_CODE, CANONICAL_PAIRS

__all__ = ["ScoringModel", "DEFAULT_MODEL"]


def _weight_matrix(weights: dict[frozenset[str], float]) -> np.ndarray:
    """4x4 lookup matrix ``W[code_a, code_b]`` of pair weights."""
    w = np.zeros((len(NUCLEOTIDES), len(NUCLEOTIDES)), dtype=np.float32)
    for pair, val in weights.items():
        chars = sorted(pair)
        a, b = (chars[0], chars[-1])
        ia, ib = NUC_TO_CODE[a], NUC_TO_CODE[b]
        w[ia, ib] = w[ib, ia] = val
    return w


@dataclass(frozen=True)
class ScoringModel:
    """Pair-weight configuration for BPMax.

    Parameters
    ----------
    pair_weights:
        Unordered-pair -> weight map for intramolecular pairs.  Defaults to
        hydrogen-bond counts (GC=3, AU=2, GU=1).
    inter_weights:
        Pair weights for intermolecular pairs; defaults to ``pair_weights``.
    min_loop:
        Minimum hairpin loop size: an intramolecular pair (i, j) requires
        ``j - i > min_loop``.  The BPMax model uses 0 (any i < j may pair);
        biologically realistic folding uses 3.
    """

    pair_weights: dict[frozenset[str], float] = field(
        default_factory=lambda: dict(CANONICAL_PAIRS)
    )
    inter_weights: dict[frozenset[str], float] | None = None
    min_loop: int = 0

    def __post_init__(self) -> None:
        if self.min_loop < 0:
            raise ValueError(f"min_loop must be >= 0, got {self.min_loop}")

    @property
    def intra_matrix(self) -> np.ndarray:
        """4x4 float32 weight matrix for intramolecular pairs."""
        return _weight_matrix(self.pair_weights)

    @property
    def inter_matrix(self) -> np.ndarray:
        """4x4 float32 weight matrix for intermolecular pairs."""
        return _weight_matrix(
            self.pair_weights if self.inter_weights is None else self.inter_weights
        )

    # -- per-sequence score tables -------------------------------------

    def score_table(self, codes: np.ndarray) -> np.ndarray:
        """``score[i, j]`` for one strand: weight of pairing positions i and j.

        Entries violating the minimum loop constraint are 0 (pair not
        allowed, and base-pair *maximisation* treats "no pair" as 0 gain,
        so a weight of 0 is equivalent to forbidding the pair for max-plus
        purposes because all admissible weights are positive).
        """
        w = self.intra_matrix
        n = len(codes)
        table = w[np.asarray(codes)[:, None], np.asarray(codes)[None, :]]
        if self.min_loop > 0:
            i = np.arange(n)
            mask = (i[None, :] - i[:, None]) <= self.min_loop
            table = table.copy()
            table[mask] = 0.0
        return table.astype(np.float32)

    def iscore_table(self, codes1: np.ndarray, codes2: np.ndarray) -> np.ndarray:
        """``iscore[i1, i2]``: weight of an intermolecular pair (i1, i2)."""
        w = self.inter_matrix
        return w[np.asarray(codes1)[:, None], np.asarray(codes2)[None, :]].astype(
            np.float32
        )

    def score(self, a: str, b: str) -> float:
        """Scalar intramolecular pair weight for nucleotides ``a``, ``b``."""
        return float(self.pair_weights.get(frozenset((a.upper(), b.upper())), 0.0))

    def iscore(self, a: str, b: str) -> float:
        """Scalar intermolecular pair weight for nucleotides ``a``, ``b``."""
        weights = self.pair_weights if self.inter_weights is None else self.inter_weights
        return float(weights.get(frozenset((a.upper(), b.upper())), 0.0))


#: The paper's default configuration (hydrogen-bond counting, no loop limit).
DEFAULT_MODEL = ScoringModel()
