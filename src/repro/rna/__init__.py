"""RNA substrate: alphabet, scoring, sequences and single-strand folding."""

from .datasets import DEMO_PAIRS, demo_pair, list_demo_pairs
from .alphabet import (
    CANONICAL_PAIRS,
    InvalidSequenceError,
    can_pair,
    decode,
    encode,
    normalize,
    pair_strength,
)
from .nussinov import nussinov, nussinov_reference, nussinov_traceback, pairs_to_dotbracket
from .scoring import DEFAULT_MODEL, ScoringModel
from .sequence import RnaSequence, random_pair, random_sequence, read_fasta, write_fasta

__all__ = [
    "DEMO_PAIRS",
    "demo_pair",
    "list_demo_pairs",
    "CANONICAL_PAIRS",
    "InvalidSequenceError",
    "can_pair",
    "decode",
    "encode",
    "normalize",
    "pair_strength",
    "nussinov",
    "nussinov_reference",
    "nussinov_traceback",
    "pairs_to_dotbracket",
    "DEFAULT_MODEL",
    "ScoringModel",
    "RnaSequence",
    "random_pair",
    "random_sequence",
    "read_fasta",
    "write_fasta",
]
