"""Tropical-algebra substrate: semirings, max-plus kernels, micro-benchmark."""

from .chain import (
    accumulated_products,
    all_windows_product,
    chain_flops,
    chain_order,
    chain_product,
)
from .maxplus import (
    KERNELS,
    NEG_INF,
    matmul_flops,
    maxplus_matmul,
    maxplus_matmul_naive,
    maxplus_matmul_scalar_kinner,
    maxplus_matmul_register,
    maxplus_matmul_tiled,
    maxplus_matmul_vectorized,
)
from .microbench import (
    StreamBenchmark,
    StreamResult,
    maxplus_stream,
    maxplus_stream_python,
    stream_flops,
)
from .semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES, Semiring

__all__ = [
    "accumulated_products",
    "all_windows_product",
    "chain_flops",
    "chain_order",
    "chain_product",
    "KERNELS",
    "NEG_INF",
    "matmul_flops",
    "maxplus_matmul",
    "maxplus_matmul_naive",
    "maxplus_matmul_scalar_kinner",
    "maxplus_matmul_register",
    "maxplus_matmul_tiled",
    "maxplus_matmul_vectorized",
    "StreamBenchmark",
    "StreamResult",
    "maxplus_stream",
    "maxplus_stream_python",
    "stream_flops",
    "MAX_PLUS",
    "MIN_PLUS",
    "PLUS_TIMES",
    "Semiring",
]
