"""Tropical-algebra substrate: semirings, max-plus kernels, micro-benchmark."""

from .chain import (
    accumulated_products,
    all_windows_product,
    chain_flops,
    chain_order,
    chain_product,
)
from .maxplus import (
    KERNELS,
    NEG_INF,
    matmul_flops,
    maxplus_matmul,
    maxplus_matmul_naive,
    maxplus_matmul_scalar_kinner,
    maxplus_matmul_register,
    maxplus_matmul_tiled,
    maxplus_matmul_vectorized,
)
from .microbench import (
    StreamBenchmark,
    StreamResult,
    maxplus_stream,
    maxplus_stream_python,
    stream_flops,
)
from .generic import (
    check_engine_semiring,
    semiring_batched,
    semiring_bias_reduce,
    semiring_matmul_vectorized,
)
from .semiring import (
    ENGINE_SEMIRINGS,
    LOG_SUM_EXP,
    MAX_PLUS,
    MIN_PLUS,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    get_semiring,
)

__all__ = [
    "accumulated_products",
    "all_windows_product",
    "chain_flops",
    "chain_order",
    "chain_product",
    "KERNELS",
    "NEG_INF",
    "matmul_flops",
    "maxplus_matmul",
    "maxplus_matmul_naive",
    "maxplus_matmul_scalar_kinner",
    "maxplus_matmul_register",
    "maxplus_matmul_tiled",
    "maxplus_matmul_vectorized",
    "StreamBenchmark",
    "StreamResult",
    "maxplus_stream",
    "maxplus_stream_python",
    "stream_flops",
    "MAX_PLUS",
    "MIN_PLUS",
    "PLUS_TIMES",
    "LOG_SUM_EXP",
    "SEMIRINGS",
    "ENGINE_SEMIRINGS",
    "Semiring",
    "get_semiring",
    "check_engine_semiring",
    "semiring_batched",
    "semiring_bias_reduce",
    "semiring_matmul_vectorized",
]
