"""The paper's Algorithm 3: the ``Y = max(alpha + X, Y)`` streaming kernel.

Phase I builds a micro-benchmark that measures attainable L1 bandwidth for
the exact access pattern the vectorized R0 kernel emits: load a scalar and
a vector, compute ``max(alpha + X, Y)``, store the vector — 2 FLOPs per
3 single-precision memory operations (arithmetic intensity 1/6).

Here the same kernel is expressed three ways:

* :func:`maxplus_stream` — NumPy (our SIMD surrogate), used for real
  wall-clock measurements;
* :func:`maxplus_stream_python` — pure-Python scalar loop, the
  unvectorized baseline;
* :class:`StreamBenchmark` — the full Algorithm 3 harness (per-"thread"
  arrays, repeated invocations, GFLOPS accounting).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "maxplus_stream",
    "maxplus_stream_python",
    "stream_flops",
    "StreamBenchmark",
    "StreamResult",
]


def maxplus_stream(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """In-place ``Y[i] = max(alpha + X[i], Y[i])`` over whole arrays."""
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    np.maximum(y, alpha + x, out=y)
    return y


def maxplus_stream_python(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Scalar-loop version of the same kernel (baseline)."""
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    for i in range(len(x)):
        v = alpha + x[i]
        if v > y[i]:
            y[i] = v
    return y


def stream_flops(chunk_size: int, iterations: int) -> int:
    """FLOPs executed by Algorithm 3 (one add + one max per element)."""
    return 2 * chunk_size * iterations


@dataclass(frozen=True)
class StreamResult:
    """One micro-benchmark measurement."""

    chunk_size: int
    iterations: int
    threads: int
    seconds: float
    gflops: float


class StreamBenchmark:
    """Algorithm 3 harness: per-thread arrays, repeated kernel invocations.

    With a single physical core available, ``threads`` scales the amount of
    independent work (as the paper's per-thread private arrays do); the
    multi-thread *performance* projection lives in
    :mod:`repro.machine.perfmodel`, which is calibrated against the
    single-thread measurements this class produces.
    """

    def __init__(
        self,
        chunk_size: int,
        iterations: int = 16,
        threads: int = 1,
        seed: int = 0,
        dtype=np.float32,
    ) -> None:
        if chunk_size <= 0 or iterations <= 0 or threads <= 0:
            raise ValueError("chunk_size, iterations and threads must be > 0")
        self.chunk_size = int(chunk_size)
        self.iterations = int(iterations)
        self.threads = int(threads)
        rng = np.random.default_rng(seed)
        self._xs = [
            rng.random(self.chunk_size, dtype=dtype) for _ in range(self.threads)
        ]
        self._ys = [
            rng.random(self.chunk_size, dtype=dtype) for _ in range(self.threads)
        ]

    def run(self, alpha: float = 1.5) -> StreamResult:
        """Execute the benchmark and return GFLOPS achieved."""
        t0 = time.perf_counter()
        for _ in range(self.iterations):
            for x, y in zip(self._xs, self._ys):
                maxplus_stream(alpha, x, y)
        dt = time.perf_counter() - t0
        flops = self.threads * stream_flops(self.chunk_size, self.iterations)
        return StreamResult(
            chunk_size=self.chunk_size,
            iterations=self.iterations,
            threads=self.threads,
            seconds=dt,
            gflops=flops / dt / 1e9 if dt > 0 else float("inf"),
        )
