"""Max-plus matrix-product kernels: the heart of the R0 computation.

Fig. 5 of the paper shows that for a fixed split point ``k1`` the double
max-plus reduction is one *max-plus matrix product* between two slices of
the F table (Fig. 8).  The paper's optimization story for this kernel is:

1. the original code uses a loop order that forbids auto-vectorization
   (the reduction index ``k2`` innermost);
2. permuting the loops so ``j2`` is innermost enables vectorization
   (Table I schedules);
3. tiling ``(i2, k2, j2)`` — with ``j2`` left untiled for the streaming
   effect — recovers locality (Fig. 8, Fig. 18).

We mirror those stages exactly: a pure-Python triple loop (baseline), a
scalar-reduction loop order that cannot vectorize the innermost axis, a
NumPy row-vectorized order (NumPy = SIMD surrogate) and a tiled variant.
All kernels compute the *accumulating* product

    C[i, j] ⊕= max_k  A[i, k] + B[k, j]

because R0 accumulates over successive ``k1`` instances into the same
output triangle.
"""

from __future__ import annotations

import numpy as np

from ..observe.metrics import active as _metrics_active

__all__ = [
    "NEG_INF",
    "maxplus_matmul_naive",
    "maxplus_matmul_scalar_kinner",
    "maxplus_matmul_vectorized",
    "maxplus_matmul_tiled",
    "maxplus_matmul_register",
    "maxplus_matmul",
    "maxplus_batched",
    "maxplus_bias_reduce",
    "matmul_flops",
    "KERNELS",
]

NEG_INF = np.float32(-np.inf)


def _check(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ValueError("max-plus matmul requires 2-D operands")
    n, k = a.shape
    k2, m = b.shape
    if k != k2 or c.shape != (n, m):
        raise ValueError(
            f"incompatible shapes A{a.shape} B{b.shape} C{c.shape}"
        )
    return n, k, m


def maxplus_matmul_naive(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Baseline: pure-Python i, j, k loops, scalar updates.

    Stands in for the original (unvectorized, locality-oblivious) code.
    """
    n, kk, m = _check(a, b, c)
    for i in range(n):
        for j in range(m):
            acc = c[i, j]
            for k in range(kk):
                v = a[i, k] + b[k, j]
                if v > acc:
                    acc = v
            c[i, j] = acc
    return c


def maxplus_matmul_scalar_kinner(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Loop order with the reduction ``k`` innermost, reduced per element.

    Mirrors the schedule the paper flags as "auto-vectorization is
    prohibited if k2 is the innermost loop": each output element performs
    its own full reduction, so there is no long unit-stride output axis.
    The per-element reduction itself uses ``np.max`` over the k stripe
    (a gather + horizontal reduction, the vector unit's worst case).
    """
    n, kk, m = _check(a, b, c)
    for i in range(n):
        ai = a[i]
        for j in range(m):
            v = np.max(ai + b[:, j]) if kk else NEG_INF
            if v > c[i, j]:
                c[i, j] = v
    return c


def maxplus_matmul_vectorized(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Row-vectorized i, k loops with ``j`` innermost (the good permutation).

    The update ``C[i, :] = max(C[i, :], A[i, k] + B[k, :])`` is exactly the
    paper's SIMD access pattern ``Y = max(a + X, Y)``: one scalar broadcast
    against two streamed rows.
    """
    n, kk, m = _check(a, b, c)
    for i in range(n):
        ci = c[i]
        ai = a[i]
        for k in range(kk):
            s = ai[k]
            if s == NEG_INF:
                continue
            np.maximum(ci, s + b[k], out=ci)
    return c


def maxplus_matmul_tiled(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    tile: tuple[int, int, int] = (32, 4, 0),
) -> np.ndarray:
    """Tiled (i, k, j) kernel; a ``j`` tile extent of 0 means "untiled".

    Tile shape follows the paper's notation ``(i2 x k2 x j2)``; the paper's
    best shapes keep ``j2`` untiled (streaming) and use small ``k2``
    (e.g. 32x4xN, 64x16xN).
    """
    n, kk, m = _check(a, b, c)
    ti, tk, tj = tile
    if ti <= 0 or tk <= 0 or tj < 0:
        raise ValueError(f"invalid tile shape {tile}; i/k extents must be > 0")
    tj = tj or m or 1
    for i0 in range(0, n, ti):
        i1 = min(i0 + ti, n)
        for k0 in range(0, kk, tk):
            k1 = min(k0 + tk, kk)
            for j0 in range(0, m, tj):
                j1 = min(j0 + tj, m)
                cblk = c[i0:i1, j0:j1]
                ablk = a[i0:i1, k0:k1]
                bblk = b[k0:k1, j0:j1]
                for dk in range(k1 - k0):
                    np.maximum(
                        cblk, ablk[:, dk : dk + 1] + bblk[dk], out=cblk
                    )
    return c


def maxplus_matmul_register(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    tile: tuple[int, int, int] = (32, 4, 0),
    reg: int = 4,
) -> np.ndarray:
    """Two-level tiled kernel: cache tiles + a register-level micro-kernel.

    The paper's conclusion notes the tiled kernel "remains bandwidth-bound
    ... an additional level of tiling at the register level is required to
    make the program compute-bound".  The micro-kernel keeps a block of
    the accumulator live and consumes ``reg`` reduction steps per update:
    in C this is unroll-and-jam into registers; in the NumPy surrogate it
    batches ``reg`` k-steps into one fused broadcast-and-reduce, cutting
    per-step accumulator traffic (and interpreter overhead) by ``reg``.
    """
    n, kk, m = _check(a, b, c)
    ti, tk, tj = tile
    if ti <= 0 or tk <= 0 or tj < 0:
        raise ValueError(f"invalid tile shape {tile}; i/k extents must be > 0")
    if reg <= 0:
        raise ValueError(f"register depth must be > 0, got {reg}")
    tj = tj or m or 1
    for i0 in range(0, n, ti):
        i1 = min(i0 + ti, n)
        for k0 in range(0, kk, tk):
            k1 = min(k0 + tk, kk)
            for j0 in range(0, m, tj):
                j1 = min(j0 + tj, m)
                cblk = c[i0:i1, j0:j1]
                ablk = a[i0:i1, k0:k1]
                bblk = b[k0:k1, j0:j1]
                for r0 in range(0, k1 - k0, reg):
                    r1 = min(r0 + reg, k1 - k0)
                    # micro-kernel: reg reduction steps fused in one op
                    contrib = (
                        ablk[:, r0:r1, None] + bblk[None, r0:r1, :]
                    ).max(axis=1)
                    np.maximum(cblk, contrib, out=cblk)
    return c


def _check_batched(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[int, int, int, int]:
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("batched max-plus matmul requires 3-D stacked operands")
    s, n, k = a.shape
    s2, k2, m = b.shape
    if s != s2 or k != k2 or c.shape != (n, m):
        raise ValueError(
            f"incompatible shapes A{a.shape} B{b.shape} C{c.shape}"
        )
    return s, n, k, m


def maxplus_batched(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
    triangular: bool = False,
) -> np.ndarray:
    """Batched accumulating product over a stack of split instances.

    Computes ``C[i, j] ⊕= max_{s, k} A[s, i, k] + B[s, k, j]`` — the whole
    R0 reduction of one outer window with every ``k1`` split stacked into
    the leading axis.  The Python loop runs over the reduction index ``k``
    only; each step is one whole-array broadcast-add over the full stack
    followed by one max-reduce, so interpreter overhead is O(k) per window
    instead of O(splits x n x k) for the per-split row kernels.

    ``tmp`` (>= (s, n, m)) and ``red`` (>= (n, m)) are optional
    preallocated scratch buffers; passing them makes the call
    allocation-free (the :class:`~repro.kernels.Workspace` hot path).

    ``triangular=True`` asserts the BPMax operand structure: column ``k``
    of every ``A[s]`` is finite only in rows ``<= k`` (stored triangles)
    and row ``k`` of every ``B[s]`` is finite only in columns ``>= k + 1``
    (shifted triangles).  The step for ``k`` then touches only the
    ``(k+1) x (m-k-1)`` finite block instead of the full ``n x m`` square
    — about a 6x cut in memory traffic.  Every skipped cell would have
    received a ``-inf`` candidate, which never changes a max, so the
    result is bit-identical to the dense form for such operands.
    """
    s, n, kk, m = _check_batched(a, b, c)
    if s == 0 or kk == 0:
        return c
    if tmp is None:
        tmp = np.empty((s, n, m), dtype=c.dtype)
    if red is None:
        red = np.empty((n, m), dtype=c.dtype)
    counters = _metrics_active()
    # np.maximum.reduce is np.max without the python dispatch wrapper —
    # this loop runs O(N^3) times per BPMax run, the wrapper is measurable
    reduce = np.maximum.reduce
    if triangular:
        add, maximum = np.add, np.maximum
        # contiguous scratch blocks (when the buffers allow it) keep the
        # add/reduce slabs dense regardless of the (rows, w) shape
        flat_t = tmp.reshape(-1) if tmp.flags["C_CONTIGUOUS"] else None
        flat_r = red.reshape(-1) if red.flags["C_CONTIGUOUS"] else None
        for k in range(kk):
            rows = min(k + 1, n)
            c0 = k + 1
            if c0 >= m:
                if counters is not None:
                    counters.count_slab(s, rows, 0, n, m)
                continue
            w = m - c0
            if counters is not None:
                counters.count_slab(s, rows, w, n, m)
            if flat_t is not None:
                t = flat_t[: s * rows * w].reshape(s, rows, w)
            else:
                t = tmp[:s, :rows, :w]
            if flat_r is not None:
                r = flat_r[: rows * w].reshape(rows, w)
            else:
                r = red[:rows, :w]
            cblk = c[:rows, c0:]
            add(a[:, :rows, k, None], b[:, k, None, c0:], out=t)
            reduce(t, axis=0, out=r)
            maximum(cblk, r, out=cblk)
        return c
    t = tmp[:s, :n, :m]
    r = red[:n, :m]
    for k in range(kk):
        if counters is not None:
            counters.count_slab(s, n, m, n, m)
        np.add(a[:, :, k, None], b[:, k, None, :], out=t)
        reduce(t, axis=0, out=r)
        np.maximum(c, r, out=c)
    return c


def maxplus_bias_reduce(
    stack: np.ndarray,
    bias: np.ndarray,
    c: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
) -> np.ndarray:
    """Accumulate ``C ⊕= max_s (stack[s] + bias[s])`` over a stack.

    The batched form of the R3/R4 reductions: each split contributes a
    whole triangle plus one scalar.  ``tmp``/``red`` as in
    :func:`maxplus_batched`.
    """
    if stack.ndim != 3 or stack.shape[1:] != c.shape:
        raise ValueError(
            f"incompatible shapes stack{stack.shape} C{c.shape}"
        )
    s = stack.shape[0]
    if bias.shape != (s,):
        raise ValueError(f"bias must have shape ({s},), got {bias.shape}")
    if s == 0:
        return c
    if tmp is None:
        tmp = np.empty_like(stack)
    if red is None:
        red = np.empty_like(c)
    t = tmp[:s, : c.shape[0], : c.shape[1]]
    r = red[: c.shape[0], : c.shape[1]]
    np.add(stack, bias[:, None, None], out=t)
    np.maximum.reduce(t, axis=0, out=r)
    np.maximum(c, r, out=c)
    return c


def maxplus_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Non-accumulating convenience wrapper: returns ``A ⊗ B``."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.full((a.shape[0], b.shape[1]), NEG_INF, dtype=np.float32)
    return maxplus_matmul_vectorized(a, b, c)


def matmul_flops(n: int, k: int, m: int) -> int:
    """FLOP count of one n x k x m max-plus product (2 ops per element)."""
    return 2 * n * k * m


#: Kernel registry used by benchmarks: name -> accumulating kernel.
KERNELS = {
    "naive": maxplus_matmul_naive,
    "scalar-k-inner": maxplus_matmul_scalar_kinner,
    "vectorized": maxplus_matmul_vectorized,
    "tiled": maxplus_matmul_tiled,
    "register-tiled": maxplus_matmul_register,
}
