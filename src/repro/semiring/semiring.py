"""Semiring abstraction underlying the BPMax kernels.

The dominant BPMax computation (the "double max-plus" reduction R0) is a
matrix product over the *tropical* (max, +) semiring.  Abstracting the
semiring lets the same kernel code serve max-plus (BPMax), min-plus
(shortest paths) and plus-times (ordinary linear algebra), and lets tests
state the semiring axioms once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Semiring", "MAX_PLUS", "MIN_PLUS", "PLUS_TIMES"]


@dataclass(frozen=True)
class Semiring:
    """A (⊕, ⊗) semiring with identities, in scalar and NumPy forms.

    Attributes
    ----------
    name: human-readable identifier.
    add: vectorized ⊕ (e.g. ``np.maximum``).
    mul: vectorized ⊗ (e.g. ``np.add``).
    zero: identity of ⊕ (annihilator of ⊗ for tropical semirings).
    one: identity of ⊗.
    add_reduce: reduction form of ⊕ along an axis (e.g. ``np.max``).
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float
    one: float
    add_reduce: Callable[..., np.ndarray]

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense semiring matrix product via one broadcast (reference only).

        Materialises the full (n, k, m) tensor; use the kernels in
        :mod:`repro.semiring.maxplus` for anything performance-sensitive.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
        prod = self.mul(a[:, :, None], b[None, :, :])
        return self.add_reduce(prod, axis=1)

    def eye(self, n: int, dtype=np.float32) -> np.ndarray:
        """Semiring identity matrix: ``one`` on the diagonal, ``zero`` off it."""
        m = np.full((n, n), self.zero, dtype=dtype)
        np.fill_diagonal(m, self.one)
        return m

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        """Matrix of ⊕-identities (the semiring 'zero matrix')."""
        return np.full(shape, self.zero, dtype=dtype)


#: Tropical max-plus semiring: ⊕ = max, ⊗ = +.  BPMax's algebra.
MAX_PLUS = Semiring(
    name="max-plus",
    add=np.maximum,
    mul=np.add,
    zero=-np.inf,
    one=0.0,
    add_reduce=np.max,
)

#: Tropical min-plus semiring (shortest paths).
MIN_PLUS = Semiring(
    name="min-plus",
    add=np.minimum,
    mul=np.add,
    zero=np.inf,
    one=0.0,
    add_reduce=np.min,
)

#: Ordinary linear algebra, for cross-checking kernel structure.
PLUS_TIMES = Semiring(
    name="plus-times",
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.sum,
)
