"""Semiring abstraction underlying the BPMax kernels.

The dominant BPMax computation (the "double max-plus" reduction R0) is a
matrix product over the *tropical* (max, +) semiring.  Abstracting the
semiring lets the same kernel code serve max-plus (BPMax), min-plus
(shortest paths) and plus-times (ordinary linear algebra), and lets tests
state the semiring axioms once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Semiring",
    "MAX_PLUS",
    "MIN_PLUS",
    "PLUS_TIMES",
    "LOG_SUM_EXP",
    "SEMIRINGS",
    "ENGINE_SEMIRINGS",
    "get_semiring",
]


@dataclass(frozen=True)
class Semiring:
    """A (⊕, ⊗) semiring with identities, in scalar and NumPy forms.

    Attributes
    ----------
    name: human-readable identifier.
    add: vectorized ⊕ (e.g. ``np.maximum``).
    mul: vectorized ⊗ (e.g. ``np.add``).
    zero: identity of ⊕ (annihilator of ⊗ for tropical semirings).
    one: identity of ⊗.
    add_reduce: reduction form of ⊕ along an axis (e.g. ``np.max``).
    exact: whether ⊕ is exact in floating point (max/min are; a
        log-sum-exp ⊕ rounds, so results carry a tolerance policy).
    idempotent: whether ``a ⊕ a == a``.  The engines' collapsed R2 scan
        is only valid for idempotent ⊕; non-idempotent semirings take a
        sequential per-row branch instead.
    dtype: the numpy scalar type engines should compute in.  Exact
        integer-weight semirings keep the paper's float32; log-sum-exp
        needs float64 to hold a 1e-9 comparison tolerance.
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float
    one: float
    add_reduce: Callable[..., np.ndarray]
    exact: bool = True
    idempotent: bool = True
    dtype: type = np.float32

    @property
    def npdtype(self) -> np.dtype:
        """The engine compute dtype as a ``np.dtype`` (for itemsize math)."""
        return np.dtype(self.dtype)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense semiring matrix product via one broadcast (reference only).

        Materialises the full (n, k, m) tensor; use the kernels in
        :mod:`repro.semiring.maxplus` for anything performance-sensitive.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
        prod = self.mul(a[:, :, None], b[None, :, :])
        return self.add_reduce(prod, axis=1)

    def eye(self, n: int, dtype=np.float32) -> np.ndarray:
        """Semiring identity matrix: ``one`` on the diagonal, ``zero`` off it."""
        m = np.full((n, n), self.zero, dtype=dtype)
        np.fill_diagonal(m, self.one)
        return m

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        """Matrix of ⊕-identities (the semiring 'zero matrix')."""
        return np.full(shape, self.zero, dtype=dtype)


#: Tropical max-plus semiring: ⊕ = max, ⊗ = +.  BPMax's algebra.
MAX_PLUS = Semiring(
    name="max-plus",
    add=np.maximum,
    mul=np.add,
    zero=-np.inf,
    one=0.0,
    add_reduce=np.max,
)

#: Tropical min-plus semiring (shortest paths).
MIN_PLUS = Semiring(
    name="min-plus",
    add=np.minimum,
    mul=np.add,
    zero=np.inf,
    one=0.0,
    add_reduce=np.min,
)

#: Ordinary linear algebra, for cross-checking kernel structure.
PLUS_TIMES = Semiring(
    name="plus-times",
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.sum,
    idempotent=False,
)

#: Sum-product in log space: ⊕ = logaddexp, ⊗ = +.  BPPart's algebra —
#: the same wavefront sums Boltzmann weights instead of maximising
#: scores, and ``np.logaddexp`` performs the shifted-exp reduction
#: internally so extreme magnitudes never overflow.  Not exact: every ⊕
#: rounds, hence float64 and a tolerance policy on every pinned value.
LOG_SUM_EXP = Semiring(
    name="logsumexp",
    add=np.logaddexp,
    mul=np.add,
    zero=-np.inf,
    one=0.0,
    add_reduce=np.logaddexp.reduce,
    exact=False,
    idempotent=False,
    dtype=np.float64,
)

#: name (and alias) -> instance; the registry behind every ``semiring=``
#: parameter in the public API
SEMIRINGS: dict[str, Semiring] = {
    "max-plus": MAX_PLUS,
    "maxplus": MAX_PLUS,
    "logsumexp": LOG_SUM_EXP,
    "log-sum-exp": LOG_SUM_EXP,
    "min-plus": MIN_PLUS,
    "plus-times": PLUS_TIMES,
}

#: canonical names of the semirings the BPMax engines can run.  The
#: engine fast paths mask invalid cells with stored ``-inf`` triangles,
#: which is only sound when ``zero == -inf`` and ``mul`` is ``np.add``
#: (so a masked operand annihilates its candidate); min-plus and
#: plus-times stay abstract-algebra/test instances.
ENGINE_SEMIRINGS = ("max-plus", "logsumexp")


def get_semiring(semiring: str | Semiring) -> Semiring:
    """Resolve a semiring name (or pass an instance through).

    Accepts the canonical names and their aliases (``maxplus``,
    ``log-sum-exp``); raises ``ValueError`` for anything unknown so a
    typo can never silently run the wrong algebra.
    """
    if isinstance(semiring, Semiring):
        return semiring
    sr = SEMIRINGS.get(semiring)
    if sr is None:
        raise ValueError(
            f"unknown semiring {semiring!r}; use one of {sorted(set(SEMIRINGS))}"
        )
    return sr
