"""Tropical multiple matrix products (the Gildemaster related work).

Paper §II cites "A tropical semiring multiple matrix-product library on
GPUs: (not just) a step towards RNA-RNA interaction computations".  The
double max-plus reduction is exactly a *multiple* max-plus matrix
product: for a window ``(i1, j1)`` the accumulation over ``k1`` maxes
``j1 - i1`` pairwise products of table slices (Fig. 5).  This module is
the CPU library version of that abstraction:

* :func:`chain_product` — associative product of a matrix chain
  ``A1 (x) A2 (x) ... (x) Ar`` in any semiring, with a dynamic-programming
  parenthesization minimising scalar operations (the classic
  matrix-chain-order algorithm, which matters for rectangular chains);
* :func:`all_windows_product` — every contiguous window's product
  ``P[i][j] = Ai (x) ... (x) Aj`` computed bottom-up, the exact shape of
  the DMP table (each window via one split, reusing sub-windows);
* :func:`accumulated_products` — the BPMax usage: for one window, the
  elementwise ⊕ over all splits of pairwise products.

Everything is semiring-generic (:mod:`repro.semiring.semiring`), so the
same code serves max-plus (BPMax), min-plus (shortest paths) and
plus-times (checked against ``numpy.linalg.multi_dot``-style results).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .semiring import MAX_PLUS, Semiring

__all__ = [
    "chain_order",
    "chain_product",
    "all_windows_product",
    "accumulated_products",
    "chain_flops",
]


def _check_chain(mats: Sequence[np.ndarray]) -> list[int]:
    if not mats:
        raise ValueError("matrix chain must be non-empty")
    dims = [mats[0].shape[0]]
    for i, m in enumerate(mats):
        if m.ndim != 2:
            raise ValueError(f"chain element {i} is not a matrix")
        if m.shape[0] != dims[-1]:
            raise ValueError(
                f"chain element {i} has {m.shape[0]} rows, expected {dims[-1]}"
            )
        dims.append(m.shape[1])
    return dims


def chain_order(dims: Sequence[int]) -> tuple[int, list[list[int]]]:
    """Optimal parenthesization of a chain with boundary sizes ``dims``.

    Returns (scalar-multiplication count, split table ``s`` where
    ``s[i][j]`` is the split of the product spanning matrices i..j).
    """
    n = len(dims) - 1
    if n <= 0:
        raise ValueError("need at least one matrix")
    cost = [[0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for span in range(1, n):
        for i in range(n - span):
            j = i + span
            best = None
            for k in range(i, j):
                c = cost[i][k] + cost[k + 1][j] + dims[i] * dims[k + 1] * dims[j + 1]
                if best is None or c < best:
                    best = c
                    split[i][j] = k
            cost[i][j] = best  # type: ignore[assignment]
    return cost[0][n - 1], split


def chain_product(
    mats: Sequence[np.ndarray], semiring: Semiring = MAX_PLUS
) -> np.ndarray:
    """Product of the whole chain under the optimal parenthesization."""
    dims = _check_chain(mats)
    _, split = chain_order(dims)

    def rec(i: int, j: int) -> np.ndarray:
        if i == j:
            return np.asarray(mats[i])
        k = split[i][j]
        return semiring.matmul(rec(i, k), rec(k + 1, j))

    return rec(0, len(mats) - 1)


def all_windows_product(
    mats: Sequence[np.ndarray], semiring: Semiring = MAX_PLUS
) -> dict[tuple[int, int], np.ndarray]:
    """Every contiguous window's product, bottom-up (the DMP table shape).

    ``P[(i, j)] = mats[i] (x) ... (x) mats[j]``; windows reuse shorter
    windows through one split, mirroring how the F table accumulates.
    """
    _check_chain(mats)
    r = len(mats)
    out: dict[tuple[int, int], np.ndarray] = {
        (i, i): np.asarray(mats[i]) for i in range(r)
    }
    for span in range(1, r):
        for i in range(r - span):
            j = i + span
            out[(i, j)] = semiring.matmul(out[(i, i)], out[(i + 1, j)])
    return out


def accumulated_products(
    mats: Sequence[np.ndarray], semiring: Semiring = MAX_PLUS
) -> np.ndarray:
    """The BPMax accumulation: ⊕ over all splits of pairwise products.

    ``result = ⊕_{k} ( P[0..k] (x) P[k+1..r-1] )`` — for max-plus with
    square matrices this equals the full chain product by associativity
    and idempotence of ⊕ (a property the tests exercise); for general
    semirings the splits genuinely differ and are all accumulated.
    """
    windows = all_windows_product(mats, semiring)
    r = len(mats)
    if r == 1:
        return windows[(0, 0)]
    acc: np.ndarray | None = None
    for k in range(r - 1):
        term = semiring.matmul(windows[(0, k)], windows[(k + 1, r - 1)])
        acc = term if acc is None else semiring.add(acc, term)
    return acc  # type: ignore[return-value]


def chain_flops(dims: Sequence[int], optimal: bool = True) -> int:
    """Scalar-operation count of a chain product (2 FLOPs per op).

    ``optimal=False`` counts the left-to-right parenthesization instead.
    """
    n = len(dims) - 1
    if n <= 0:
        raise ValueError("need at least one matrix")
    if optimal:
        ops, _ = chain_order(dims)
        return 2 * ops
    total = 0
    rows = dims[0]
    for i in range(1, n):
        total += rows * dims[i] * dims[i + 1]
    return 2 * total
