"""Semiring-generic batched kernels: R0/R3/R4 under any engine semiring.

These mirror the max-plus kernels of :mod:`repro.semiring.maxplus` with
the ⊕/⊗ ufuncs taken from a :class:`~repro.semiring.semiring.Semiring`
descriptor, so the same slab structure (stacked splits, triangular
skips, flat contiguous scratch) serves BPPart's log-sum-exp algebra.

Dispatch policy: when the semiring *is* max-plus the calls route
straight to the existing hand-tuned kernels — the refactor must keep
every max-plus score bit-identical, and the fastest way to guarantee
that is to run the exact same code.  The generic paths below are only
taken for non-max-plus semirings.

The triangular-skip optimization stays valid for any engine semiring
(``mul is np.add``, ``zero == -inf``): a skipped cell's candidate is
``-inf ⊗ x = -inf``, the ⊕-identity, so omitting it never changes the
reduction — for ``logaddexp`` exactly (``logaddexp(-inf, x) == x``), not
just within tolerance.
"""

from __future__ import annotations

import numpy as np

from ..observe.metrics import active as _metrics_active
from .maxplus import (
    NEG_INF,
    _check,
    _check_batched,
    maxplus_batched,
    maxplus_bias_reduce,
    maxplus_matmul_vectorized,
)
from .semiring import ENGINE_SEMIRINGS, MAX_PLUS, Semiring, get_semiring

__all__ = [
    "check_engine_semiring",
    "semiring_batched",
    "semiring_bias_reduce",
    "semiring_matmul_vectorized",
]


def check_engine_semiring(semiring: str | Semiring) -> Semiring:
    """Resolve ``semiring`` and require it to be engine-compatible.

    The vectorized engines mask structurally-invalid cells with stored
    ``-inf`` triangles and combine candidates with ``np.add``; any
    semiring whose ⊗ is not ``+`` or whose ⊕-identity is not ``-inf``
    would read those masks as real values.
    """
    sr = get_semiring(semiring)
    if sr.name not in ENGINE_SEMIRINGS:
        raise ValueError(
            f"semiring {sr.name!r} cannot run on the BPMax engines; "
            f"engine-compatible semirings: {ENGINE_SEMIRINGS}"
        )
    return sr


def semiring_matmul_vectorized(
    sr: Semiring, a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Row-vectorized accumulating product ``C[i,:] ⊕= a[i,k] ⊗ B[k,:]``.

    The generic counterpart of
    :func:`~repro.semiring.maxplus.maxplus_matmul_vectorized`; the
    ``-inf`` row skip carries over unchanged because ``-inf`` operands
    contribute the ⊕-identity under any engine semiring.
    """
    if sr is MAX_PLUS or sr.name == MAX_PLUS.name:
        return maxplus_matmul_vectorized(a, b, c)
    n, kk, m = _check(a, b, c)
    add = sr.add
    for i in range(n):
        ci = c[i]
        ai = a[i]
        for k in range(kk):
            s = ai[k]
            if s == NEG_INF:
                continue
            add(ci, s + b[k], out=ci)
    return c


def semiring_batched(
    sr: Semiring,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
    triangular: bool = False,
) -> np.ndarray:
    """Batched accumulating product ``C[i,j] ⊕= ⊕_{s,k} A[s,i,k] ⊗ B[s,k,j]``.

    Structure (slab shapes, counters, flat scratch reuse) matches
    :func:`~repro.semiring.maxplus.maxplus_batched`; only the reduction
    and accumulation ufuncs change.  Each candidate ``(s, k)`` is
    combined exactly once, which is what a non-idempotent ⊕ requires.
    """
    if sr is MAX_PLUS or sr.name == MAX_PLUS.name:
        return maxplus_batched(a, b, c, tmp=tmp, red=red, triangular=triangular)
    s, n, kk, m = _check_batched(a, b, c)
    if s == 0 or kk == 0:
        return c
    if tmp is None:
        tmp = np.empty((s, n, m), dtype=c.dtype)
    if red is None:
        red = np.empty((n, m), dtype=c.dtype)
    counters = _metrics_active()
    mul = sr.mul
    reduce = sr.add.reduce
    accum = sr.add
    if triangular:
        flat_t = tmp.reshape(-1) if tmp.flags["C_CONTIGUOUS"] else None
        flat_r = red.reshape(-1) if red.flags["C_CONTIGUOUS"] else None
        for k in range(kk):
            rows = min(k + 1, n)
            c0 = k + 1
            if c0 >= m:
                if counters is not None:
                    counters.count_slab(s, rows, 0, n, m)
                continue
            w = m - c0
            if counters is not None:
                counters.count_slab(s, rows, w, n, m)
            if flat_t is not None:
                t = flat_t[: s * rows * w].reshape(s, rows, w)
            else:
                t = tmp[:s, :rows, :w]
            if flat_r is not None:
                r = flat_r[: rows * w].reshape(rows, w)
            else:
                r = red[:rows, :w]
            cblk = c[:rows, c0:]
            mul(a[:, :rows, k, None], b[:, k, None, c0:], out=t)
            reduce(t, axis=0, out=r)
            accum(cblk, r, out=cblk)
        return c
    t = tmp[:s, :n, :m]
    r = red[:n, :m]
    for k in range(kk):
        if counters is not None:
            counters.count_slab(s, n, m, n, m)
        mul(a[:, :, k, None], b[:, k, None, :], out=t)
        reduce(t, axis=0, out=r)
        accum(c, r, out=c)
    return c


def semiring_bias_reduce(
    sr: Semiring,
    stack: np.ndarray,
    bias: np.ndarray,
    c: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
) -> np.ndarray:
    """Accumulate ``C ⊕= ⊕_s (stack[s] ⊗ bias[s])`` over a stack.

    Generic counterpart of
    :func:`~repro.semiring.maxplus.maxplus_bias_reduce` (the batched
    R3/R4 form: one triangle plus one scalar per split).
    """
    if sr is MAX_PLUS or sr.name == MAX_PLUS.name:
        return maxplus_bias_reduce(stack, bias, c, tmp=tmp, red=red)
    if stack.ndim != 3 or stack.shape[1:] != c.shape:
        raise ValueError(f"incompatible shapes stack{stack.shape} C{c.shape}")
    s = stack.shape[0]
    if bias.shape != (s,):
        raise ValueError(f"bias must have shape ({s},), got {bias.shape}")
    if s == 0:
        return c
    if tmp is None:
        tmp = np.empty_like(stack)
    if red is None:
        red = np.empty_like(c)
    t = tmp[:s, : c.shape[0], : c.shape[1]]
    r = red[: c.shape[0], : c.shape[1]]
    sr.mul(stack, bias[:, None, None], out=t)
    sr.add.reduce(t, axis=0, out=r)
    sr.add(c, r, out=c)
    return c
