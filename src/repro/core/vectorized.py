"""Vectorized BPMax engines: the optimized program versions.

One engine class covers the paper's coarse / fine / hybrid / hybrid-tiled
program versions (Figs. 15/16).  In this reproduction NumPy row
operations play the role of compiler auto-vectorization, so the variants
differ in:

* the outer-triangle traversal order (diagonal vs bottom-up-left-right —
  the paper finds them nearly equivalent, Fig. 13 orange vs blue);
* the R0 kernel (vectorized rows vs the tiled (i2 x k2 x j2) kernel);
* the *parallelization granularity* metadata (triangle / row / hybrid)
  consumed by the thread-level simulator and the perf model — plus an
  optional real thread pool that row-partitions the R0 products
  (fine-grain parallelism over ``i2`` rows, exactly the paper's scheme).

The per-window computation follows the Phase-II/III schedules:

1. accumulate R0 (max-plus matrix products over ``k1`` splits) together
   with R3/R4, which "are almost free since those get computed along
   with the R0" (§V-C);
2. add the intramolecular closure terms and the independent-fold term;
3. finish rows bottom-up: R1 scatters contributions from completed rows
   below, R2 scatters incrementally as the row's cells finalize
   left-to-right (the ``k2``-middle / ``j2``-inner vectorizable order of
   Tables II-IV).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..parallel.pool import ParallelRunner
from ..semiring.maxplus import NEG_INF
from .dmp import DMP_KERNELS, _shifted
from .reference import BpmaxInputs
from .tables import FTable

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.checkpoint import CheckpointManager
    from ..robust.deadline import Deadline
    from ..robust.faults import FaultPlan

__all__ = ["VectorizedBPMax", "VARIANT_CONFIGS"]

#: paper program version -> engine configuration
VARIANT_CONFIGS: dict[str, dict] = {
    "coarse": {"order": "diagonal", "kernel": "vectorized", "granularity": "triangle"},
    "fine": {"order": "bottomup", "kernel": "vectorized", "granularity": "row"},
    "hybrid": {"order": "bottomup", "kernel": "vectorized", "granularity": "hybrid"},
    "hybrid-tiled": {"order": "bottomup", "kernel": "tiled", "granularity": "hybrid"},
}


class VectorizedBPMax:
    """NumPy-vectorized BPMax engine.

    Parameters
    ----------
    inputs: precomputed tables from :func:`repro.core.reference.prepare_inputs`.
    variant: one of ``coarse | fine | hybrid | hybrid-tiled`` (presets), or
        pass explicit ``order`` / ``kernel`` / ``tile`` overrides.
    tile: (i2, k2, j2) extents for the tiled kernel; 0 = untiled dim.
    threads: >1 row-partitions the R0 products over a real thread pool.
    """

    def __init__(
        self,
        inputs: BpmaxInputs,
        variant: str = "hybrid-tiled",
        order: str | None = None,
        kernel: str | None = None,
        tile: tuple[int, int, int] = (32, 4, 0),
        threads: int = 1,
        layout: str = "option1",
    ) -> None:
        if variant not in VARIANT_CONFIGS:
            raise ValueError(
                f"unknown variant {variant!r}; use one of {list(VARIANT_CONFIGS)}"
            )
        cfg = VARIANT_CONFIGS[variant]
        self.variant = variant
        self.order = order or cfg["order"]
        self.kernel_name = kernel or cfg["kernel"]
        self.granularity = cfg["granularity"]
        if self.kernel_name not in DMP_KERNELS:
            raise ValueError(f"unknown kernel {self.kernel_name!r}")
        if self.order not in ("diagonal", "bottomup"):
            raise ValueError(f"order must be 'diagonal' or 'bottomup', got {self.order!r}")
        self.tile = tile
        self.threads = threads
        self._faults: "FaultPlan | None" = None
        self.inputs = inputs
        self.table = FTable(inputs.n, inputs.m, layout=layout)
        m = inputs.m
        # S2 restricted to the upper triangle (-inf elsewhere) so it can be
        # combined with F matrices without masking in the hot loops.
        self._s2_ut = np.full((m, m), NEG_INF, dtype=np.float32)
        iu = np.triu_indices(m)
        self._s2_ut[iu] = inputs.s2[iu]

    # -- traversal ------------------------------------------------------------

    def _windows(self):
        n = self.inputs.n
        if self.order == "diagonal":
            for span in range(1, n):
                for i1 in range(n - span):
                    yield (i1, i1 + span)
        else:
            for i1 in range(n - 1, -1, -1):
                for j1 in range(i1 + 1, n):
                    yield (i1, j1)

    # -- R0/R3/R4 accumulation ---------------------------------------------------

    def _accumulate_splits(self, i1: int, j1: int, acc: np.ndarray) -> None:
        inp = self.inputs
        kern = DMP_KERNELS[self.kernel_name]
        tri = self.table

        def product(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> None:
            if self.kernel_name in ("tiled", "register-tiled"):
                kern(a, bs, out, tile=self.tile)
            else:
                kern(a, bs, out)

        if self.threads > 1:
            blocks = np.array_split(np.arange(inp.m), self.threads)
            with ParallelRunner(self.threads, faults=self._faults) as pool:
                for k1 in range(i1, j1):
                    a = tri.inner(i1, k1)
                    b = tri.inner(k1 + 1, j1)
                    bs = _shifted(b)

                    def do_rows(rows, a=a, bs=bs, b=b, k1=k1):
                        sl = slice(rows[0], rows[-1] + 1)
                        product(a[sl], bs, acc[sl])
                        np.maximum(
                            acc[sl], inp.s1[i1, k1] + b[sl], out=acc[sl]
                        )
                        np.maximum(
                            acc[sl], a[sl] + inp.s1[k1 + 1, j1], out=acc[sl]
                        )

                    pool.map(do_rows, [blk for blk in blocks if len(blk)])
            return

        for k1 in range(i1, j1):
            a = tri.inner(i1, k1)
            b = tri.inner(k1 + 1, j1)
            product(a, _shifted(b), acc)  # R0
            np.maximum(acc, inp.s1[i1, k1] + b, out=acc)  # R3
            np.maximum(acc, a + inp.s1[k1 + 1, j1], out=acc)  # R4

    # -- per-window computation --------------------------------------------------

    def _compute_window(self, i1: int, j1: int) -> None:
        inp = self.inputs
        m = inp.m
        s1v = float(inp.s1[i1, j1])
        g = self.table.alloc(i1, j1)

        if i1 == j1:
            self._compute_diagonal_window(i1, g)
            return

        acc = np.full((m, m), NEG_INF, dtype=np.float32)
        self._accumulate_splits(i1, j1, acc)

        # closure of the (i1, j1) intramolecular pair
        if j1 == i1 + 1:
            c1 = self._s2_ut + inp.score1[i1, j1]
        else:
            c1 = self.table.inner(i1 + 1, j1 - 1) + inp.score1[i1, j1]
        np.maximum(acc, c1, out=acc)
        # independent folds of both windows
        np.maximum(acc, s1v + self._s2_ut, out=acc)

        self._finish_rows(i1, j1, g, acc, s1v)

    def _compute_diagonal_window(self, i1: int, g: np.ndarray) -> None:
        """Windows with a single strand-1 base (no R0/R3/R4/closure1)."""
        inp = self.inputs
        m = inp.m
        acc = np.maximum(
            np.full((m, m), NEG_INF, dtype=np.float32),
            float(inp.s1[i1, i1]) + self._s2_ut,
        )
        self._finish_rows(i1, i1, g, acc, float(inp.s1[i1, i1]), base_iscore=True)

    def _finish_rows(
        self,
        i1: int,
        j1: int,
        g: np.ndarray,
        start: np.ndarray,
        s1v: float,
        base_iscore: bool = False,
    ) -> None:
        """Rows bottom-up; within a row, R1 upfront and R2 incrementally."""
        inp = self.inputs
        m = inp.m
        s2 = inp.s2
        score2 = inp.score2
        for i2 in range(m - 1, -1, -1):
            row = start[i2].copy()
            if i2 + 1 < m:
                # closure of the (i2, j2) intramolecular pair
                c2 = np.full(m, NEG_INF, dtype=np.float32)
                c2[i2 + 1] = s1v + score2[i2, i2 + 1]
                if i2 + 2 < m:
                    c2[i2 + 2 :] = g[i2 + 1, i2 + 1 : m - 1] + score2[i2, i2 + 2 :]
                np.maximum(row, c2, out=row)
                # R1: completed rows below scatter into this row
                for k2 in range(i2, m - 1):
                    seg = slice(k2 + 1, m)
                    np.maximum(
                        row[seg], s2[i2, k2] + g[k2 + 1, seg], out=row[seg]
                    )
            # diagonal cell
            if base_iscore and j1 == i1:
                g[i2, i2] = inp.iscore[i1, i2]
            else:
                g[i2, i2] = row[i2]
            # R2 scatters as cells finalize left-to-right
            r2 = np.full(m, NEG_INF, dtype=np.float32)
            if i2 + 1 < m:
                r2[i2 + 1 :] = g[i2, i2] + s2[i2 + 1, i2 + 1 :]
            for j2 in range(i2 + 1, m):
                v = row[j2]
                if r2[j2] > v:
                    v = r2[j2]
                g[i2, j2] = v
                if j2 + 1 < m:
                    seg = slice(j2 + 1, m)
                    np.maximum(r2[seg], v + s2[j2 + 1, seg], out=r2[seg])

    # -- public API -----------------------------------------------------------------

    def run(
        self,
        *,
        checkpoint: "CheckpointManager | None" = None,
        deadline: "Deadline | None" = None,
        faults: "FaultPlan | None" = None,
        resume: frozenset[tuple[int, int]] | None = None,
    ) -> float:
        """Fill the full table; return the interaction score.

        The optional robustness hooks are polled per outer window:
        windows listed in ``resume`` (pre-loaded from a checkpoint) are
        skipped, ``deadline`` raises when the budget expires, ``faults``
        injects crash/slow faults, and ``checkpoint`` snapshots the
        table whenever a full prefix of outer diagonals completes.
        """
        inp = self.inputs
        done = frozenset() if resume is None else frozenset(resume)
        self._faults = faults
        try:
            for i1 in range(inp.n):
                self._run_window(i1, i1, done, checkpoint, deadline, faults)
            for i1, j1 in self._windows():
                self._run_window(i1, j1, done, checkpoint, deadline, faults)
        finally:
            self._faults = None
        return float(self.table.get(0, inp.n - 1, 0, inp.m - 1))

    def _run_window(
        self,
        i1: int,
        j1: int,
        done: frozenset[tuple[int, int]],
        checkpoint: "CheckpointManager | None",
        deadline: "Deadline | None",
        faults: "FaultPlan | None",
    ) -> None:
        if (i1, j1) in done:
            return
        if deadline is not None:
            deadline.check(f"window ({i1}, {j1})")
        if faults is not None:
            delay = faults.engine_window(i1, j1)
            if delay > 0:
                time.sleep(delay)
        self._compute_window(i1, j1)
        if checkpoint is not None:
            checkpoint.mark_done(i1, j1)
            checkpoint.maybe_save(self.table)
