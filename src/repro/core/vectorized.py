"""Vectorized BPMax engines: the optimized program versions.

One engine class covers the paper's coarse / fine / hybrid / hybrid-tiled
program versions (Figs. 15/16) plus the backend-dispatched ``batched``
version.  In this reproduction NumPy row operations play the role of
compiler auto-vectorization, so the variants differ in:

* the outer-triangle traversal order (diagonal vs bottom-up-left-right —
  the paper finds them nearly equivalent, Fig. 13 orange vs blue);
* the R0 kernel (vectorized rows vs the tiled (i2 x k2 x j2) kernel vs a
  :mod:`repro.kernels` backend that stacks all ``k1`` splits into 3-D
  blocks and reduces them with whole-array max-plus ops);
* the *parallelization granularity* metadata (triangle / row / hybrid)
  consumed by the thread-level simulator and the perf model — plus an
  optional real thread pool that row-partitions the R0 products
  (fine-grain parallelism over ``i2`` rows, exactly the paper's scheme).

The per-window computation follows the Phase-II/III schedules:

1. accumulate R0 (max-plus matrix products over ``k1`` splits) together
   with R3/R4, which "are almost free since those get computed along
   with the R0" (§V-C);
2. add the intramolecular closure terms and the independent-fold term;
3. finish rows bottom-up: R1 scatters contributions from completed rows
   below as one blocked update per row, R2 in the collapsed single-step
   form (see :meth:`VectorizedBPMax._finish_rows`).

The hot path is allocation-free: every per-window temporary (the
accumulator, the stacked split operands, the broadcast scratch, the row
buffers) lives in a per-engine :class:`~repro.kernels.Workspace`, and
the shifted right-operand triangles are computed once per completed
window and cached on the :class:`~repro.core.tables.FTable`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..kernels import DEFAULT_BACKEND, KernelBackend, Workspace, get_backend
from ..observe.metrics import active as _metrics_active
from ..observe.tracer import trace
from ..parallel.pool import ParallelRunner
from ..semiring.generic import check_engine_semiring, semiring_bias_reduce
from ..semiring.maxplus import NEG_INF
from .dmp import DMP_KERNELS
from .reference import BpmaxInputs
from .tables import FTable

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.checkpoint import CheckpointManager
    from ..robust.deadline import Deadline
    from ..robust.faults import FaultPlan

__all__ = ["VectorizedBPMax", "VARIANT_CONFIGS"]

#: paper program version -> engine configuration
VARIANT_CONFIGS: dict[str, dict] = {
    "coarse": {"order": "diagonal", "kernel": "vectorized", "granularity": "triangle"},
    "fine": {"order": "bottomup", "kernel": "vectorized", "granularity": "row"},
    "hybrid": {"order": "bottomup", "kernel": "vectorized", "granularity": "hybrid"},
    "hybrid-tiled": {"order": "bottomup", "kernel": "tiled", "granularity": "hybrid"},
    "batched": {
        "order": "bottomup",
        "kernel": "vectorized",
        "granularity": "hybrid",
        "backend": "numpy-batched",
    },
}


class VectorizedBPMax:
    """NumPy-vectorized BPMax engine.

    Parameters
    ----------
    inputs: precomputed tables from :func:`repro.core.reference.prepare_inputs`.
    variant: one of ``coarse | fine | hybrid | hybrid-tiled | batched``
        (presets), or pass explicit ``order`` / ``kernel`` / ``backend``
        overrides.
    tile: (i2, k2, j2) extents for the tiled kernel; 0 = untiled dim.
    threads: >1 row-partitions the R0 products over a real thread pool
        (one persistent pool per ``run()``, created lazily and closed in
        its ``finally``).
    backend: a :mod:`repro.kernels` backend name (or resolved
        :class:`~repro.kernels.KernelBackend`) routing R0/R3/R4 through
        the stacked batched path; ``None`` keeps the variant's classic
        per-split kernel.
    workspace: a pre-built :class:`~repro.kernels.Workspace` to reuse
        instead of allocating a fresh one — the serving layer passes one
        workspace to every engine of a same-shape batch so the stacked
        buffers warm up once per *batch* rather than once per request.
        Must match this problem's inner length and split bound, and must
        never be shared between concurrently-running engines.
    fr_q: block width of the ``fourrussians`` backend's lookup tables
        (``None`` = the persisted/heuristic ``~log2(M)`` default).
    fr_sparsify: enable the candidate-list split/block pruning of the
        ``fourrussians`` backend (bit-identical either way).

    A backend carrying the ``bounded_scores`` capability verifies its
    weight-model precondition here: when it fails, the engine resolves
    the backend's declared fallback instead and records a structured
    note on :attr:`backend_note` (``{"requested", "resolved",
    "reason"}``) — a wrong score is never produced.
    """

    def __init__(
        self,
        inputs: BpmaxInputs,
        variant: str = "hybrid-tiled",
        order: str | None = None,
        kernel: str | None = None,
        tile: tuple[int, int, int] = (32, 4, 0),
        threads: int = 1,
        layout: str = "option1",
        backend: str | KernelBackend | None = None,
        workspace: Workspace | None = None,
        fr_q: int | None = None,
        fr_sparsify: bool = True,
    ) -> None:
        if variant not in VARIANT_CONFIGS:
            raise ValueError(
                f"unknown variant {variant!r}; use one of {list(VARIANT_CONFIGS)}"
            )
        cfg = VARIANT_CONFIGS[variant]
        self.variant = variant
        self.order = order or cfg["order"]
        self.kernel_name = kernel or cfg["kernel"]
        self.granularity = cfg["granularity"]
        if self.kernel_name not in DMP_KERNELS:
            raise ValueError(f"unknown kernel {self.kernel_name!r}")
        if self.order not in ("diagonal", "bottomup"):
            raise ValueError(f"order must be 'diagonal' or 'bottomup', got {self.order!r}")
        self.tile = tile
        self.threads = threads
        if backend is None:
            backend = cfg.get("backend")
        self.backend: KernelBackend | None = (
            get_backend(backend) if backend is not None else None
        )
        self._faults: "FaultPlan | None" = None
        self._pool: ParallelRunner | None = None
        self.inputs = inputs
        self.sr = check_engine_semiring(inputs.semiring)
        self.backend_note: dict[str, str] | None = None
        if self.sr.name != "max-plus":
            # the classic per-split kernels and any max-plus-only backend
            # cannot run this algebra: resolve a semiring-generic backend
            # and record how we got there — a wrong-algebra score is
            # never produced silently
            if self.backend is None:
                resolved = get_backend(DEFAULT_BACKEND)
                self.backend_note = {
                    "requested": "(classic kernels)",
                    "resolved": resolved.name,
                    "reason": (
                        "the classic per-split kernels are max-plus only; "
                        f"semiring {self.sr.name!r} runs on the batched path"
                    ),
                }
                self.backend = resolved
            elif self.sr.name not in self.backend.semirings:
                requested = self.backend.name
                resolved = get_backend(self.backend.fallback or DEFAULT_BACKEND)
                if self.sr.name not in resolved.semirings:
                    resolved = get_backend(DEFAULT_BACKEND)
                self.backend_note = {
                    "requested": requested,
                    "resolved": resolved.name,
                    "reason": (
                        f"backend {requested!r} supports semirings "
                        f"{self.backend.semirings}; requested {self.sr.name!r}"
                    ),
                }
                self.backend = resolved
        dt = self.sr.npdtype
        self._scalar = dt.type  # scalar cast keeping the engine dtype exact
        self.table = FTable(inputs.n, inputs.m, layout=layout, dtype=dt)
        m = inputs.m
        kmax = max(inputs.n - 1, 0)
        if workspace is not None:
            if workspace.m != m or workspace.kmax < kmax or workspace.dtype != dt:
                raise ValueError(
                    f"workspace sized for (m={workspace.m}, kmax="
                    f"{workspace.kmax}, dtype={workspace.dtype.name}) cannot "
                    f"serve a problem needing (m={m}, kmax={kmax}, "
                    f"dtype={dt.name})"
                )
            self._ws = workspace
        else:
            self._ws = Workspace(m, kmax, dtype=dt)
        # S2 restricted to the upper triangle (-inf elsewhere) so it can be
        # combined with F matrices without masking in the hot loops.
        self._s2_ut = np.full((m, m), NEG_INF, dtype=dt)
        iu = np.triu_indices(m)
        self._s2_ut[iu] = inputs.s2[iu]
        # static per-row views of the finish-rows scan, built once so the
        # O(N^2 M) row loop does no slice construction for fixed operands
        s2, score2 = inputs.s2, inputs.score2
        self._fin_r1 = [s2[i2, i2 : m - 1, None] for i2 in range(m)]
        self._fin_clo = [score2[i2, i2 + 1 :] for i2 in range(m)]
        self._fin_r2 = [self._s2_ut[i2 + 1 : m, i2 + 1 :] for i2 in range(m)]
        self._score2_diag1 = (
            np.ascontiguousarray(score2.diagonal(1))
            if m > 1
            else np.empty(0, dtype=dt)
        )
        # bounded-scores backends (fourrussians): verify the precondition
        # now, fall back with a structured note when it does not hold
        self._fr = None
        if self.backend is not None and self.backend.capabilities.get(
            "bounded_scores"
        ):
            from ..kernels.fourrussians_backend import FourRussiansState
            from ..kernels.fourrussians_tables import check_bounded_scores

            check = check_bounded_scores(inputs)
            if not check.ok:
                requested = self.backend.name
                resolved = get_backend(self.backend.fallback)
                self.backend_note = {
                    "requested": requested,
                    "resolved": resolved.name,
                    "reason": check.reason,
                }
                self.backend = resolved
            elif self.threads == 1:
                # the blocked whole-window path; threaded runs keep the
                # generic row-partitioned kernel (still bit-identical)
                self._fr = FourRussiansState(
                    self, d=check.d, q=fr_q, sparsify=fr_sparsify
                )

    # -- traversal ------------------------------------------------------------

    def _windows(self):
        n = self.inputs.n
        if self.order == "diagonal":
            for span in range(1, n):
                for i1 in range(n - span):
                    yield (i1, i1 + span)
        else:
            for i1 in range(n - 1, -1, -1):
                for j1 in range(i1 + 1, n):
                    yield (i1, j1)

    # -- R0/R3/R4 accumulation ---------------------------------------------------

    def _get_pool(self) -> ParallelRunner:
        """The persistent per-run pool (created lazily, closed by run())."""
        if self._pool is None:
            self._pool = ParallelRunner(self.threads, faults=self._faults)
        return self._pool

    def _accumulate_splits(self, i1: int, j1: int, acc: np.ndarray) -> None:
        if self.backend is not None:
            self._accumulate_splits_batched(i1, j1, acc)
            return
        inp = self.inputs
        kern = DMP_KERNELS[self.kernel_name]
        tri = self.table

        def product(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> None:
            if self.kernel_name in ("tiled", "register-tiled"):
                kern(a, bs, out, tile=self.tile)
            else:
                kern(a, bs, out)

        if self.threads > 1:
            blocks = np.array_split(np.arange(inp.m), self.threads)
            pool = self._get_pool()
            for k1 in range(i1, j1):
                a = tri.inner(i1, k1)
                b = tri.inner(k1 + 1, j1)
                bs = tri.shifted(k1 + 1, j1)

                def do_rows(rows, a=a, bs=bs, b=b, k1=k1):
                    sl = slice(rows[0], rows[-1] + 1)
                    product(a[sl], bs, acc[sl])
                    np.maximum(
                        acc[sl], inp.s1[i1, k1] + b[sl], out=acc[sl]
                    )
                    np.maximum(
                        acc[sl], a[sl] + inp.s1[k1 + 1, j1], out=acc[sl]
                    )

                pool.map(do_rows, [blk for blk in blocks if len(blk)])
            return

        ws = self._ws
        for k1 in range(i1, j1):
            a = tri.inner(i1, k1)
            b = tri.inner(k1 + 1, j1)
            product(a, tri.shifted(k1 + 1, j1), acc)  # R0
            np.add(b, inp.s1[i1, k1], out=ws.red)
            np.maximum(acc, ws.red, out=acc)  # R3
            np.add(a, inp.s1[k1 + 1, j1], out=ws.red)
            np.maximum(acc, ws.red, out=acc)  # R4

    def _accumulate_splits_batched(self, i1: int, j1: int, acc: np.ndarray) -> None:
        """Stacked R0/R3/R4: all ``k1`` splits as one 3-D block reduction."""
        with trace("r0.batched", window=(i1, j1), splits=j1 - i1):
            self._accumulate_splits_batched_inner(i1, j1, acc)

    def _accumulate_splits_batched_inner(
        self, i1: int, j1: int, acc: np.ndarray
    ) -> None:
        if self._fr is not None:
            self._fr.accumulate(self, i1, j1, acc)
            return
        if self.backend.window_r0 is not None and self.threads == 1:
            # slab-direct generated kernels accumulate the whole window
            # straight off the packed table (zero-copy left operands);
            # threaded runs keep the row-partitioned generic path below
            self.backend.window_r0(self, i1, j1, acc)
            return
        inp = self.inputs
        tri = self.table
        ws = self._ws
        backend = self.backend
        k = j1 - i1
        astack, bstack, braw = ws.stacks(k)
        for s in range(k):
            k1 = i1 + s
            np.copyto(astack[s], tri.inner(i1, k1))
            np.copyto(braw[s], tri.inner(k1 + 1, j1))
            np.copyto(bstack[s], tri.shifted(k1 + 1, j1))
        s1l = np.ascontiguousarray(inp.s1[i1, i1:j1])  # S1[i1, k1]
        s1r = np.ascontiguousarray(inp.s1[i1 + 1 : j1 + 1, j1])  # S1[k1+1, j1]

        sr = self.sr
        if self.threads > 1:
            blocks = np.array_split(np.arange(inp.m), self.threads)
            pool = self._get_pool()

            # row blocks are disjoint slices of ``acc``, so accumulating a
            # non-idempotent ⊕ per block is race-free and counts each
            # candidate exactly once
            def do_rows(rows):
                sl = slice(rows[0], rows[-1] + 1)
                backend.batched_r0(astack[:, sl], bstack, acc[sl], semiring=sr)
                semiring_bias_reduce(sr, braw[:, sl], s1l, acc[sl])  # R3
                semiring_bias_reduce(sr, astack[:, sl], s1r, acc[sl])  # R4

            pool.map(do_rows, [blk for blk in blocks if len(blk)])
            return

        tmp = ws.tmp3(k)
        backend.batched_r0(
            astack, bstack, acc, tmp=tmp, red=ws.red, triangular=True, semiring=sr
        )
        semiring_bias_reduce(sr, braw, s1l, acc, tmp=tmp, red=ws.red)  # R3
        semiring_bias_reduce(sr, astack, s1r, acc, tmp=tmp, red=ws.red)  # R4

    # -- per-window computation --------------------------------------------------

    def _compute_window(self, i1: int, j1: int) -> None:
        inp = self.inputs
        counters = _metrics_active()
        if counters is not None:
            counters.count_window(j1 - i1, inp.m)
        s1v = float(inp.s1[i1, j1])
        g = self.table.alloc(i1, j1)

        if i1 == j1:
            self._compute_diagonal_window(i1, g)
            return

        ws = self._ws
        acc = ws.acc_reset()
        if self._fr is not None:
            # seed the split-independent terms first so the Four-Russians
            # dominance prune starts from a meaningful baseline (max is
            # order-independent: same bits either way)
            self._apply_window_terms(i1, j1, acc, s1v)
            self._accumulate_splits(i1, j1, acc)
        else:
            self._accumulate_splits(i1, j1, acc)
            self._apply_window_terms(i1, j1, acc, s1v)

        self._finish_rows(i1, j1, g, acc, s1v)

    def _apply_window_terms(
        self, i1: int, j1: int, acc: np.ndarray, s1v: float
    ) -> None:
        """The window's split-independent terms: closure-1 + independent
        folds of both windows."""
        inp = self.inputs
        ws = self._ws
        accum = self.sr.add
        # closure of the (i1, j1) intramolecular pair
        if j1 == i1 + 1:
            np.add(self._s2_ut, inp.score1[i1, j1], out=ws.red)
        else:
            np.add(self.table.inner(i1 + 1, j1 - 1), inp.score1[i1, j1], out=ws.red)
        accum(acc, ws.red, out=acc)
        # independent folds of both windows
        np.add(self._s2_ut, self._scalar(s1v), out=ws.red)
        accum(acc, ws.red, out=acc)

    def _compute_diagonal_window(self, i1: int, g: np.ndarray) -> None:
        """Windows with a single strand-1 base (no R0/R3/R4/closure1)."""
        inp = self.inputs
        acc = self._ws.acc
        # -inf stays -inf below the diagonal, so the add alone seeds the
        # independent-fold term everywhere it applies
        np.add(self._s2_ut, inp.s1[i1, i1], out=acc)
        self._finish_rows(i1, i1, g, acc, float(inp.s1[i1, i1]), base_iscore=True)

    def _finish_rows(
        self,
        i1: int,
        j1: int,
        g: np.ndarray,
        start: np.ndarray,
        s1v: float,
        base_iscore: bool = False,
    ) -> None:
        """Rows bottom-up; R1 and R2 as blocked whole-row updates.

        R1 reads only completed rows below, whose matrices carry -inf
        left of the diagonal, so the split-range restriction is implicit
        and the whole scan is one broadcast-and-reduce per row.

        Under max-plus, R2 uses the collapsed single-step form: because
        ``S2`` is built by the Nussinov recurrence it is max-plus
        superadditive (``S2[a, b] >= S2[a, k] + S2[k+1, b]`` exactly as
        stored), so any chained scatter through an intermediate finalized
        cell is dominated by the direct contribution from the pre-R2 row
        value — the incremental left-to-right scatter collapses to
        ``max_k2 vals[k2] + S2[k2+1, j2]`` with ``vals`` the post-R1 row
        (plus the finalized diagonal).  With the integer-valued scoring
        models every sum is exact in float32, making this bit-identical
        to the scalar references.

        That collapse is the one optimization in the engine that needs an
        *idempotent* ⊕ (the chained and direct derivations coincide under
        max, but are distinct summands).  Non-idempotent semirings take a
        sequential left-to-right scan instead: each ``j2`` reduces the
        candidates ``F[i2, k2] ⊗ S2[k2+1, j2]`` over finalized cells to
        its left — each derivation counted exactly once, matching the
        reference recursion's candidate set verbatim.
        """
        inp = self.inputs
        m = inp.m
        ws = self._ws
        sr = self.sr
        fin_flat = ws.fin.reshape(-1)  # contiguous (rows, w) blocks per row
        rowbuf = ws.row_a
        scratch = ws.row_c
        fin_r1 = self._fin_r1
        fin_clo = self._fin_clo
        fin_r2 = self._fin_r2
        add = np.add
        maximum = sr.add
        reduce = sr.add_reduce
        copyto = np.copyto
        use_iscore = base_iscore and j1 == i1
        # closure-2 seed for the empty inner window, all rows at once
        if m > 1:
            seed = ws.row_b[: m - 1]
            add(self._score2_diag1, self._scalar(s1v), out=seed)
        for i2 in range(m - 1, -1, -1):
            kspan = m - 1 - i2
            if kspan == 0:
                g[i2, i2] = inp.iscore[i1, i2] if use_iscore else start[i2, i2]
                continue
            w = m - i2  # columns [i2:] — the only ones the triangle stores
            # One stacked reduce covers three sources at once: every R1
            # row below (the -inf left of each stored diagonal makes the
            # split-range restriction implicit), the closure-2 row, and
            # the accumulator row itself.
            fin = fin_flat[: (kspan + 2) * w].reshape(kspan + 2, w)
            add(fin_r1[i2], g[i2 + 1 : m, i2:], out=fin[:kspan])
            add(g[i2 + 1, i2 : m - 1], fin_clo[i2], out=fin[kspan, 1:])
            fin[kspan, 0] = NEG_INF
            fin[kspan, 1] = seed[i2]  # empty inner window
            copyto(fin[kspan + 1], start[i2, i2:])
            row = rowbuf[:w]
            reduce(fin, axis=0, out=row)
            # diagonal cell
            d = inp.iscore[i1, i2] if use_iscore else row[0]
            g[i2, i2] = d
            if not sr.idempotent:
                # sequential R2 (see docstring): finalize columns left to
                # right, reading already-final cells of this same row
                copyto(g[i2, i2 + 1 :], row[1:])
                grow = g[i2]
                s2ut = self._s2_ut
                for j2 in range(i2 + 1, m):
                    cand = grow[i2:j2] + s2ut[i2 + 1 : j2 + 1, j2]
                    grow[j2] = maximum(grow[j2], reduce(cand))
                continue
            # R2, collapsed (see docstring); only columns > i2 exist.
            # row[0] is dead after the diagonal store, so it doubles as
            # the k2 = i2 candidate slot.
            row[0] = d
            fin2 = fin_flat[: kspan * kspan].reshape(kspan, kspan)
            add(row[:kspan, None], fin_r2[i2], out=fin2)
            reduce(fin2, axis=0, out=scratch[:kspan])
            maximum(row[1:], scratch[:kspan], out=g[i2, i2 + 1 :])

    # -- public API -----------------------------------------------------------------

    def run(
        self,
        *,
        checkpoint: "CheckpointManager | None" = None,
        deadline: "Deadline | None" = None,
        faults: "FaultPlan | None" = None,
        resume: frozenset[tuple[int, int]] | None = None,
    ) -> float:
        """Fill the full table; return the interaction score.

        The optional robustness hooks are polled per outer window:
        windows listed in ``resume`` (pre-loaded from a checkpoint) are
        skipped, ``deadline`` raises when the budget expires, ``faults``
        injects crash/slow faults, and ``checkpoint`` snapshots the
        table whenever a full prefix of outer diagonals completes.

        With ``threads > 1`` one persistent :class:`ParallelRunner` is
        created lazily for the whole run (not one per window) and closed
        here, whatever the outcome — preserving the pool's
        fault-injection and close-after-use semantics.
        """
        inp = self.inputs
        done = frozenset() if resume is None else frozenset(resume)
        if (
            self.backend is not None
            and self.backend.capabilities.get("tile_graph")
        ):
            # tile-graph backends run the whole fill through the tiled
            # wavefront executor (bit-identical tables, same hooks)
            from ..kernels.tiled_backend import TiledExecutor

            if TiledExecutor.fits(inp.n, inp.m, itemsize=self.sr.npdtype.itemsize):
                with trace(
                    "engine.run",
                    variant=self.variant,
                    n=inp.n,
                    m=inp.m,
                    order=self.order,
                    kernel=self.kernel_name,
                    backend=self.backend.name,
                    threads=self.threads,
                ):
                    return TiledExecutor(self).run(
                        done=done,
                        checkpoint=checkpoint,
                        deadline=deadline,
                        faults=faults,
                    )
            # mirrors would not fit: fall through to the per-window
            # batched path, which computes the identical sums in the
            # same semiring dtype
        self._faults = faults
        try:
            with trace(
                "engine.run",
                variant=self.variant,
                n=inp.n,
                m=inp.m,
                order=self.order,
                kernel=self.kernel_name,
                backend=self.backend.name if self.backend is not None else None,
                threads=self.threads,
            ):
                for i1 in range(inp.n):
                    self._run_window(i1, i1, done, checkpoint, deadline, faults)
                for i1, j1 in self._windows():
                    self._run_window(i1, j1, done, checkpoint, deadline, faults)
        finally:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self._faults = None
        return float(self.table.get(0, inp.n - 1, 0, inp.m - 1))

    def _run_window(
        self,
        i1: int,
        j1: int,
        done: frozenset[tuple[int, int]],
        checkpoint: "CheckpointManager | None",
        deadline: "Deadline | None",
        faults: "FaultPlan | None",
    ) -> None:
        if (i1, j1) in done:
            return
        if deadline is not None:
            deadline.check(f"window ({i1}, {j1})")
        if faults is not None:
            delay = faults.engine_window(i1, j1)
            if delay > 0:
                time.sleep(delay)
        with trace("engine.window", i1=i1, j1=j1):
            self._compute_window(i1, j1)
        if checkpoint is not None:
            checkpoint.mark_done(i1, j1)
            checkpoint.maybe_save(self.table)
