"""BPMax expressed in mini-Alpha, plus the paper's schedules (Tables I-V).

This module is the reproduction of the paper's *methodology*: the BPMax
recurrence written as a system of affine recurrence equations, and each
published multi-dimensional affine schedule encoded as data so that

* the mini-Alpha interpreter evaluates the system as a semantics oracle
  (cross-checked against :mod:`repro.core.reference`);
* the dependence checker verifies each schedule's legality, including
  the parallel dimensions (fine-grain valid only for R0/R3/R4, etc.);
* the schedule-driven code generator executes the system in exactly the
  published order (Table VI's LOC statistics come from these sources).

Schedule transcription notes
----------------------------
Tables are encoded as printed in the paper with two normalizations,
flagged ``# [T]`` below: obvious scan artefacts (e.g. ``--i1`` for
``-i1``, ``i 2`` for ``i2``) are repaired, and Table V's subsystem-call
row ``j1-4`` is read as ``j1-1`` (the call must precede the window's
final F updates).  Every transcription is validated by the legality
tests in ``tests/core/test_schedules.py``.

The variable naming follows the paper: ``F`` is the output table,
``R0``..``R4`` the five reductions, ``S1``/``S2`` the single-strand
tables (inputs of the scheduled system — the paper likewise schedules
them "before scheduling any other variables").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..polyhedral.affine import AffineMap, var
from ..polyhedral.alpha.ast import BinOp, Case, Const, Equation, Reduce, VarRef
from ..polyhedral.alpha.system import AlphaSystem, VarDecl
from ..polyhedral.codegen.mapping import TargetMapping
from ..polyhedral.domain import Constraint, Domain
from ..polyhedral.schedule import Schedule

__all__ = [
    "bpmax_system",
    "dmp_system",
    "nussinov_system",
    "VariantSchedules",
    "SCHEDULE_TABLES",
    "schedules_for",
    "target_mapping_for",
]

NEG_INF = float("-inf")

_IDX4 = ("i1", "j1", "i2", "j2")


def _dom(text: str, params=("N", "M")) -> Domain:
    return Domain.parse(text, params=params)


def _ref(name: str, scope: tuple[str, ...], *exprs: str) -> VarRef:
    return VarRef(
        name=name,
        access=AffineMap(
            inputs=scope, exprs=tuple(var(e) if e.isidentifier() else _parse(e) for e in exprs)
        ),
    )


def _parse(text: str):
    from ..polyhedral.affine import AffineExpr

    return AffineExpr.parse(text)


def _vmax(*exprs):
    out = exprs[0]
    for e in exprs[1:]:
        out = BinOp("max", out, e)
    return out


# ---------------------------------------------------------------------------
# the systems
# ---------------------------------------------------------------------------

def _nussinov_equation(svar: str, score: str, idx: tuple[str, str], n_param: str) -> Equation:
    """Weighted-Nussinov equation for one strand."""
    i, j = idx
    dom = _dom(f"{{{i}, {j} | 0 <= {i} && {i} <= {j} && {j} < {n_param}}}")
    scope = (i, j)
    split_dom = _dom(
        f"{{{i}, {j}, k | 0 <= {i} && {i} <= k && k < {j} && {j} < {n_param}}}"
    )
    split = Reduce(
        op="max",
        extra=("k",),
        domain=split_dom,
        body=BinOp(
            "+",
            _ref(svar, (i, j, "k"), i, "k"),
            _ref(svar, (i, j, "k"), "k+1", j),
        ),
    )
    pair_close = BinOp(
        "+", _ref(svar, scope, f"{i}+1", f"{j}-1"), _ref(score, scope, i, j)
    )
    body = Case(
        branches=(
            (_dom(f"{{{i}, {j} | {i} == {j}}}"), Const(0.0)),
            (
                _dom(f"{{{i}, {j} | {j} == {i}+1}}"),
                _vmax(_ref(score, scope, i, j), split),
            ),
            (
                _dom(f"{{{i}, {j} | {j} >= {i}+2}}"),
                _vmax(pair_close, split),
            ),
        )
    )
    return Equation(var=svar, domain=dom, body=body)


def nussinov_system(param: str = "N") -> AlphaSystem:
    """Single-strand folding as its own Alpha system (codegen demo)."""
    dom = _dom(f"{{i, j | 0 <= i && i <= j && j < {param}}}", params=(param,))
    sys_ = AlphaSystem(
        name="nussinov",
        params=(param,),
        inputs=[VarDecl("score", dom)],
        outputs=[VarDecl("S", dom)],
    )
    eq = _nussinov_equation("S", "score", ("i", "j"), param)
    sys_.equations.append(eq)
    sys_.validate()
    return sys_


def _f_domain() -> Domain:
    return _dom(
        "{i1, j1, i2, j2 | 0 <= i1 && i1 <= j1 && j1 < N && "
        "0 <= i2 && i2 <= j2 && j2 < M}"
    )


def _reduce_domain(extra: str) -> Domain:
    base = (
        "0 <= i1 && i1 <= j1 && j1 < N && 0 <= i2 && i2 <= j2 && j2 < M"
    )
    if extra == "k1k2":
        return _dom(
            "{i1, j1, i2, j2, k1, k2 | " + base + " && i1 <= k1 && k1 < j1 "
            "&& i2 <= k2 && k2 < j2}"
        )
    if extra == "k2":
        return _dom(
            "{i1, j1, i2, j2, k2 | " + base + " && i2 <= k2 && k2 < j2}"
        )
    if extra == "k1":
        return _dom(
            "{i1, j1, i2, j2, k1 | " + base + " && i1 <= k1 && k1 < j1}"
        )
    raise ValueError(extra)


def bpmax_system(include_s: bool = True) -> AlphaSystem:
    """The complete BPMax recurrence as an Alpha system.

    With ``include_s`` the single-strand tables are computed by equations
    (full-program semantics, for the interpreter oracle); without it they
    are inputs (the scheduled system, matching Tables II-IV which place
    S1/S2 in a preliminary phase).
    """
    f_dom = _f_domain()
    s1_dom = _dom("{i, j | 0 <= i && i <= j && j < N}")
    s2_dom = _dom("{i, j | 0 <= i && i <= j && j < M}")
    sc1_dom = s1_dom
    sc2_dom = s2_dom
    is_dom = _dom("{i1, i2 | 0 <= i1 && i1 < N && 0 <= i2 && i2 < M}")

    sys_ = AlphaSystem(
        name="bpmax",
        params=("N", "M"),
        inputs=[
            VarDecl("score1", sc1_dom),
            VarDecl("score2", sc2_dom),
            VarDecl("iscore", is_dom),
        ],
        outputs=[VarDecl("F", f_dom)],
    )
    if include_s:
        sys_.locals += [VarDecl("S1", s1_dom), VarDecl("S2", s2_dom)]
        sys_.equations.append(_nussinov_equation("S1", "score1", ("i", "j"), "N"))
        sys_.equations.append(_nussinov_equation("S2", "score2", ("i", "j"), "M"))
    else:
        sys_.inputs += [VarDecl("S1", s1_dom), VarDecl("S2", s2_dom)]

    # ---- the five reductions (paper eqs. 2-3) ----
    z6 = tuple(_reduce_domain("k1k2").names)
    r0 = Reduce(
        "max",
        ("k1", "k2"),
        _reduce_domain("k1k2"),
        BinOp(
            "+",
            _ref("F", z6, "i1", "k1", "i2", "k2"),
            _ref("F", z6, "k1+1", "j1", "k2+1", "j2"),
        ),
    )
    z5b = tuple(_reduce_domain("k2").names)
    r1 = Reduce(
        "max",
        ("k2",),
        _reduce_domain("k2"),
        BinOp(
            "+",
            _ref("S2", z5b, "i2", "k2"),
            _ref("F", z5b, "i1", "j1", "k2+1", "j2"),
        ),
    )
    r2 = Reduce(
        "max",
        ("k2",),
        _reduce_domain("k2"),
        BinOp(
            "+",
            _ref("F", z5b, "i1", "j1", "i2", "k2"),
            _ref("S2", z5b, "k2+1", "j2"),
        ),
    )
    z5a = tuple(_reduce_domain("k1").names)
    r3 = Reduce(
        "max",
        ("k1",),
        _reduce_domain("k1"),
        BinOp(
            "+",
            _ref("S1", z5a, "i1", "k1"),
            _ref("F", z5a, "k1+1", "j1", "i2", "j2"),
        ),
    )
    r4 = Reduce(
        "max",
        ("k1",),
        _reduce_domain("k1"),
        BinOp(
            "+",
            _ref("F", z5a, "i1", "k1", "i2", "j2"),
            _ref("S1", z5a, "k1+1", "j1"),
        ),
    )
    for name, red in (("R0", r0), ("R1", r1), ("R2", r2), ("R3", r3), ("R4", r4)):
        sys_.locals.append(VarDecl(name, f_dom))
        sys_.equations.append(Equation(var=name, domain=f_dom, body=red))

    # ---- the F equation (paper eq. 1) ----
    scope = _IDX4
    # closure of an intramolecular (i1, j1) pair, with boundary cases
    cl1 = Case(
        branches=(
            (_dom("{i1, j1 | i1 == j1}"), Const(NEG_INF)),
            (
                _dom("{i1, j1 | j1 == i1+1}"),
                BinOp(
                    "+",
                    _ref("S2", scope, "i2", "j2"),
                    _ref("score1", scope, "i1", "j1"),
                ),
            ),
            (
                _dom("{i1, j1 | j1 >= i1+2}"),
                BinOp(
                    "+",
                    _ref("F", scope, "i1+1", "j1-1", "i2", "j2"),
                    _ref("score1", scope, "i1", "j1"),
                ),
            ),
        )
    )
    cl2 = Case(
        branches=(
            (_dom("{i2, j2 | i2 == j2}"), Const(NEG_INF)),
            (
                _dom("{i2, j2 | j2 == i2+1}"),
                BinOp(
                    "+",
                    _ref("S1", scope, "i1", "j1"),
                    _ref("score2", scope, "i2", "j2"),
                ),
            ),
            (
                _dom("{i2, j2 | j2 >= i2+2}"),
                BinOp(
                    "+",
                    _ref("F", scope, "i1", "j1", "i2+1", "j2-1"),
                    _ref("score2", scope, "i2", "j2"),
                ),
            ),
        )
    )
    h = _vmax(
        BinOp(
            "+",
            _ref("S1", scope, "i1", "j1"),
            _ref("S2", scope, "i2", "j2"),
        ),
        _ref("R0", scope, *_IDX4),
        _ref("R1", scope, *_IDX4),
        _ref("R2", scope, *_IDX4),
        _ref("R3", scope, *_IDX4),
        _ref("R4", scope, *_IDX4),
    )
    f_body = Case(
        branches=(
            (
                _dom("{i1, j1, i2, j2 | i1 == j1 && i2 == j2}"),
                _ref("iscore", scope, "i1", "i2"),
            ),
            (_f_domain(), _vmax(cl1, cl2, h)),
        )
    )
    sys_.equations.append(Equation(var="F", domain=f_dom, body=f_body))
    sys_.validate()
    return sys_


def dmp_system() -> AlphaSystem:
    """Phase-I's simplified system: the double max-plus recurrence alone.

    Diagonal windows (``j1 == i1``) come from an input ``T``; every other
    window is eq. (4).  Cells with ``i2 == j2`` in non-diagonal windows
    have an empty reduction and take the max-plus identity.
    """
    f_dom = _f_domain()
    t_dom = _dom("{i1, i2, j2 | 0 <= i1 && i1 < N && 0 <= i2 && i2 <= j2 && j2 < M}")
    sys_ = AlphaSystem(
        name="dmp",
        params=("N", "M"),
        inputs=[VarDecl("T", t_dom)],
        outputs=[VarDecl("F", f_dom)],
    )
    z6 = tuple(_reduce_domain("k1k2").names)
    r0 = Reduce(
        "max",
        ("k1", "k2"),
        _reduce_domain("k1k2"),
        BinOp(
            "+",
            _ref("F", z6, "i1", "k1", "i2", "k2"),
            _ref("F", z6, "k1+1", "j1", "k2+1", "j2"),
        ),
    )
    sys_.locals.append(VarDecl("R0", f_dom))
    sys_.equations.append(Equation(var="R0", domain=f_dom, body=r0))
    body = Case(
        branches=(
            (
                _dom("{i1, j1, i2, j2 | i1 == j1}"),
                _ref("T", _IDX4, "i1", "i2", "j2"),
            ),
            (_f_domain(), _ref("R0", _IDX4, *_IDX4)),
        )
    )
    sys_.equations.append(Equation(var="F", domain=f_dom, body=body))
    sys_.validate()
    return sys_


# ---------------------------------------------------------------------------
# the schedules (Tables I-V)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VariantSchedules:
    """One published schedule table.

    ``body`` schedules accumulation/statement instances (reduction
    variables get extended index spaces); ``init`` schedules reduction
    initialisation; ``ready`` gives each reduction's completion time
    (its body schedule at the last accumulation), used when the variable
    is a *producer* in a dependence.
    """

    name: str
    table: str  # which paper table this transcribes
    body: dict[str, Schedule]
    init: dict[str, Schedule]
    ready: dict[str, Schedule]
    parallel_dim: int | None
    notes: str = ""

    def checker_schedules(self) -> tuple[dict[str, Schedule], dict[str, Schedule]]:
        """(schedules, producer_schedules) for the legality checker."""
        return dict(self.body), dict(self.ready)


def _sched(var_: str, text: str, par: int | None) -> Schedule:
    dims = () if par is None else (par,)
    return Schedule.parse(var_, text, dims)


def _table_fine() -> VariantSchedules:
    """Table II — BPMax fine-grain schedule (parallel dimension 5).

    Dimension 5 is ``-i2`` for R0/R3/R4 (rows of the current triangle run
    in parallel) but a constant for F/R1/R2 — encoding "fine-grain is
    only valid for R0, R3 and R4" (§IV-B-b).
    """
    p = 5
    body = {
        "F": _sched("F", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0-i2, 0, j2, 0)", p),
        "R1": _sched("R1", "(i1,j1,i2,j2,k2 -> 1, 0-i1, j1, j1, 0-i2, 0, k2, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2,k2 -> 1, 0-i1, j1, j1, 0-i2, 0, k2, j2)", p),
        "R0": _sched(
            "R0", "(i1,j1,i2,j2,k1,k2 -> 1, 0-i1, j1, k1, 0-1, 0-i2, k2, j2)", p
        ),  # [T] "--i1" in the scan read as -i1
        "R3": _sched("R3", "(i1,j1,i2,j2,k1 -> 1, 0-i1, j1, k1, 0-1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2,k1 -> 1, 0-i1, j1, k1, 0-1, 0-i2, i2, j2)", p),
    }
    init = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0-i2, 0, i2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0-i2, 0, i2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 1, 0-i1, j1, i1-1, 0-1, 0-i2, i2-1, j2)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 1, 0-i1, j1, i1-1, 0-1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 1, 0-i1, j1, i1-1, 0-1, 0-i2, i2, j2)", p),
    }
    ready = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0-i2, 0, j2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0-i2, 0, j2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1-1, 0-1, 0-i2, j2-1, j2)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1-1, 0-1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1-1, 0-1, 0-i2, i2, j2)", p),
    }
    return VariantSchedules(
        name="fine",
        table="Table II",
        body=body,
        init=init,
        ready=ready,
        parallel_dim=p,
        notes="rows parallel for R0/R3/R4 only",
    )


def _table_coarse() -> VariantSchedules:
    """Table III — BPMax coarse-grain schedule (triangles parallel, dim 2)."""
    p = 2
    body = {
        "F": _sched("F", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1, 0-i2, j2, j2)", p),
        "R1": _sched("R1", "(i1,j1,i2,j2,k2 -> 1, j1-i1, i1, j1, 0-i2, k2, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2,k2 -> 1, j1-i1, i1, j1, 0-i2, k2, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2,k1,k2 -> 1, j1-i1, i1, k1, 0-i2, k2, j2)", p),
        # [T] printed "i2" at dim 4; normalised to -i2 for a uniform
        # bottom-up row order (the paper notes any inner order is valid)
        "R3": _sched("R3", "(i1,j1,i2,j2,k1 -> 1, j1-i1, i1, k1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2,k1 -> 1, j1-i1, i1, k1, 0-i2, i2, j2)", p),
    }
    init = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1, 0-i2, i2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1, 0-i2, i2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 1, j1-i1, i1, i1-1, 0-i2, i2-1, j2)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 1, j1-i1, i1, i1-1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 1, j1-i1, i1, i1-1, 0-i2, i2, j2)", p),
    }
    ready = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1, 0-i2, j2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1, 0-i2, j2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, 0-i2, j2-1, j2)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, 0-i2, i2, j2)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, 0-i2, i2, j2)", p),
    }
    return VariantSchedules(
        name="coarse",
        table="Table III",
        body=body,
        init=init,
        ready=ready,
        parallel_dim=p,
        notes="distinct inner triangles in parallel; DRAM-bound (§V-B)",
    )


def _table_hybrid() -> VariantSchedules:
    """Table IV — hybrid: coarse for F/R1/R2 (dim 4 = i1), fine for
    R0/R3/R4 (dim 4 = i2).  Assumes N <= M (dim 2 separates the groups
    with the constant M)."""
    p = 4
    body = {
        "F": _sched("F", "(i1,j1,i2,j2 -> 1, j1-i1, M, 0, i1, 0-i2, j2, 0)", p),
        "R1": _sched("R1", "(i1,j1,i2,j2,k2 -> 1, j1-i1, M, 0, i1, 0-i2, k2, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2,k2 -> 1, j1-i1, M, 0, i1, 0-i2, k2, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2,k1,k2 -> 1, j1-i1, i1, k1, i2, k2, j2, 0)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2,k1 -> 1, j1-i1, i1, k1, i2, i2, j2, 0)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2,k1 -> 1, j1-i1, i1, k1, i2, i2, j2, 0)", p),
    }
    init = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, j1-i1, M, 0, i1, 0-i2, i2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, j1-i1, M, 0, i1, 0-i2, i2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 0, j1-i1, i1, 0, i2, 0, j2, 0)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 0, j1-i1, i1, 0, i2, 0, j2, 0)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 0, j1-i1, i1, 0, i2, 0, j2, 0)", p),
    }
    ready = {
        "R1": _sched("R1", "(i1,j1,i2,j2 -> 1, j1-i1, M, 0, i1, 0-i2, j2-1, j2)", p),
        "R2": _sched("R2", "(i1,j1,i2,j2 -> 1, j1-i1, M, 0, i1, 0-i2, j2-1, j2)", p),
        "R0": _sched("R0", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, i2, j2-1, j2, 0)", p),
        "R3": _sched("R3", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, i2, i2, j2, 0)", p),
        "R4": _sched("R4", "(i1,j1,i2,j2 -> 1, j1-i1, i1, j1-1, i2, i2, j2, 0)", p),
    }
    return VariantSchedules(
        name="hybrid",
        table="Table IV",
        body=body,
        init=init,
        ready=ready,
        parallel_dim=p,
        notes="requires N <= M; best untiled variant (Fig. 15 green)",
    )


def _table_dmp() -> VariantSchedules:
    """Table I — double max-plus schedules (for :func:`dmp_system`).

    [T] the printed rows are partially garbled; this is the reconstruction
    consistent with §IV-A: diagonal outer order, ``k1`` third, inner
    triple ``(-i2, k2, j2)`` so ``j2`` stays innermost and vectorizable.
    """
    body = {
        "F": _sched("F", "(i1,j1,i2,j2 -> j1-i1, i1, j1, 0-i2, j2, j2)", None),
        "R0": _sched("R0", "(i1,j1,i2,j2,k1,k2 -> j1-i1, i1, k1, 0-i2, k2, j2)", None),
    }
    init = {
        "R0": _sched("R0", "(i1,j1,i2,j2 -> j1-i1, i1, i1-1, 0-i2, i2-1, j2)", None),
    }
    ready = {
        "R0": _sched("R0", "(i1,j1,i2,j2 -> j1-i1, i1, j1-1, 0-i2, j2-1, j2)", None),
    }
    return VariantSchedules(
        name="dmp",
        table="Table I",
        body=body,
        init=init,
        ready=ready,
        parallel_dim=None,
        notes="Phase-I schedule for the standalone double max-plus",
    )


SCHEDULE_TABLES: dict[str, VariantSchedules] = {
    "dmp": _table_dmp(),
    "fine": _table_fine(),
    "coarse": _table_coarse(),
    "hybrid": _table_hybrid(),
}


def schedules_for(variant: str) -> VariantSchedules:
    """Look up one published schedule table by variant name."""
    try:
        return SCHEDULE_TABLES[variant]
    except KeyError:
        raise ValueError(
            f"unknown schedule variant {variant!r}; use one of {list(SCHEDULE_TABLES)}"
        ) from None


def target_mapping_for(variant: str, system_name: str = "bpmax") -> TargetMapping:
    """Build the AlphaZ-style :class:`TargetMapping` for a variant.

    Suitable for :func:`repro.polyhedral.codegen.compile_schedule` on the
    matching system (``dmp_system()`` for ``"dmp"``, else
    ``bpmax_system(include_s=False)``).
    """
    vs = schedules_for(variant)
    tm = TargetMapping(system_name)
    for name, sched in vs.body.items():
        init = vs.init.get(name)
        tm.set_space_time_map(
            name,
            sched,
            init=init,
            parallel_dims=sched.parallel_dims,
        )
    return tm
