"""Exhaustive enumeration of the BPMax joint-structure space.

The BPMax recurrence (eqs. 1-3) implicitly defines a *grammar* of
admissible joint structures: non-crossing intramolecular pairs in each
strand, monotone intermolecular pairs, and Eddy-Rivas compatibility
between the two kinds (a closing pair confines a window's remaining
interaction; no pseudoknots, no zig-zags).

This module makes that space explicit for small windows by evaluating
the recurrence over the set-of-structures semiring — every ``max``
becomes set union, every ``+`` becomes pairwise structure union — with
deduplication.  The grammar is ambiguous (one structure is often
derivable through several splits), so deduplication is what turns the
derivation multiset into the structure *space*.

It is exponential and only usable for tiny sequences, which is exactly
its job as an independent oracle:

* ``max(weight over enumerate_structures()) == bpmax score`` validates
  the entire optimization stack against first principles;
* the Boltzmann sum over the space is the **exact partition function**
  used to validate and calibrate :mod:`repro.core.bppart`;
* restricted sub-spaces (intermolecular-only, single-strand) validate
  the unambiguous DPs in :mod:`repro.core.bppart` count-for-count.

Pairs of weight 0 (non-canonical) are excluded throughout — they change
neither the optimum nor the partition function.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .reference import BpmaxInputs

__all__ = [
    "Structure",
    "enumerate_structures",
    "enumerate_foldings",
    "enumerate_duplexes",
    "structure_weight",
    "EMPTY",
]


@dataclass(frozen=True)
class Structure:
    """One joint structure: frozen sets of pairs."""

    pairs1: frozenset[tuple[int, int]] = frozenset()
    pairs2: frozenset[tuple[int, int]] = frozenset()
    inter: frozenset[tuple[int, int]] = frozenset()

    def union(self, other: "Structure") -> "Structure":
        return Structure(
            self.pairs1 | other.pairs1,
            self.pairs2 | other.pairs2,
            self.inter | other.inter,
        )

    @property
    def size(self) -> int:
        return len(self.pairs1) + len(self.pairs2) + len(self.inter)


EMPTY = Structure()


def structure_weight(s: Structure, inputs: BpmaxInputs) -> float:
    """Total pair weight of a structure under the scoring model."""
    total = 0.0
    for i, j in s.pairs1:
        total += float(inputs.score1[i, j])
    for i, j in s.pairs2:
        total += float(inputs.score2[i, j])
    for i, j in s.inter:
        total += float(inputs.iscore[i, j])
    return total


def _cross(a: frozenset, b: frozenset) -> set:
    return {x.union(y) for x in a for y in b}


def enumerate_foldings(
    weights, n: int, strand: int = 1
) -> frozenset[frozenset[tuple[int, int]]]:
    """All non-crossing pair sets of one strand (weight > 0 pairs only)."""
    ok = weights > 0

    @lru_cache(maxsize=None)
    def fold(i: int, j: int) -> frozenset[frozenset[tuple[int, int]]]:
        if i >= j:
            return frozenset([frozenset()])
        out: set[frozenset[tuple[int, int]]] = set(fold(i + 1, j))
        for k in range(i + 1, j + 1):
            if ok[i, k]:
                for inside in fold(i + 1, k - 1):
                    for outside in fold(k + 1, j):
                        out.add(inside | outside | {(i, k)})
        return frozenset(out)

    return fold(0, n - 1)


def enumerate_duplexes(inputs: BpmaxInputs) -> frozenset[frozenset[tuple[int, int]]]:
    """All monotone intermolecular matchings (inter pairs only)."""
    oki = inputs.iscore > 0

    @lru_cache(maxsize=None)
    def dup(i1: int, i2: int) -> frozenset[frozenset[tuple[int, int]]]:
        if i1 >= inputs.n or i2 >= inputs.m:
            return frozenset([frozenset()])
        out: set[frozenset[tuple[int, int]]] = set(dup(i1 + 1, i2))
        for k2 in range(i2, inputs.m):
            if oki[i1, k2]:
                for rest in dup(i1 + 1, k2 + 1):
                    out.add(rest | {(i1, k2)})
        return frozenset(out)

    return dup(0, 0)


def enumerate_structures(inputs: BpmaxInputs) -> set[Structure]:
    """All admissible joint structures of the two full strands.

    Mirrors ``bpmax_recursive`` case by case over the set semiring.
    """
    n, m = inputs.n, inputs.m
    ok1 = inputs.score1 > 0
    ok2 = inputs.score2 > 0
    oki = inputs.iscore > 0

    @lru_cache(maxsize=None)
    def fold1(i: int, j: int) -> frozenset[Structure]:
        if i >= j:
            return frozenset([EMPTY])
        out: set[Structure] = set(fold1(i + 1, j))
        for k in range(i + 1, j + 1):
            if ok1[i, k]:
                closed = Structure(pairs1=frozenset([(i, k)]))
                for s in _cross(fold1(i + 1, k - 1), fold1(k + 1, j)):
                    out.add(s.union(closed))
        return frozenset(out)

    @lru_cache(maxsize=None)
    def fold2(i: int, j: int) -> frozenset[Structure]:
        if i >= j:
            return frozenset([EMPTY])
        out: set[Structure] = set(fold2(i + 1, j))
        for k in range(i + 1, j + 1):
            if ok2[i, k]:
                closed = Structure(pairs2=frozenset([(i, k)]))
                for s in _cross(fold2(i + 1, k - 1), fold2(k + 1, j)):
                    out.add(s.union(closed))
        return frozenset(out)

    @lru_cache(maxsize=None)
    def f(i1: int, j1: int, i2: int, j2: int) -> frozenset[Structure]:
        # empty-window conventions, as in the recurrence
        if j1 < i1 and j2 < i2:
            return frozenset([EMPTY])
        if j1 < i1:
            return fold2(i2, j2)
        if j2 < i2:
            return fold1(i1, j1)
        if i1 == j1 and i2 == j2:
            out = {EMPTY}
            if oki[i1, i2]:
                out.add(Structure(inter=frozenset([(i1, i2)])))
            return frozenset(out)
        out: set[Structure] = set()
        # closures
        if j1 > i1 and ok1[i1, j1]:
            closed = Structure(pairs1=frozenset([(i1, j1)]))
            out |= {s.union(closed) for s in f(i1 + 1, j1 - 1, i2, j2)}
        if j2 > i2 and ok2[i2, j2]:
            closed = Structure(pairs2=frozenset([(i2, j2)]))
            out |= {s.union(closed) for s in f(i1, j1, i2 + 1, j2 - 1)}
        # H: independent folds
        out |= _cross(fold1(i1, j1), fold2(i2, j2))
        # R0: the double split
        for k1 in range(i1, j1):
            for k2 in range(i2, j2):
                out |= _cross(f(i1, k1, i2, k2), f(k1 + 1, j1, k2 + 1, j2))
        # R1 / R2
        for k2 in range(i2, j2):
            out |= _cross(fold2(i2, k2), f(i1, j1, k2 + 1, j2))
            out |= _cross(f(i1, j1, i2, k2), fold2(k2 + 1, j2))
        # R3 / R4
        for k1 in range(i1, j1):
            out |= _cross(fold1(i1, k1), f(k1 + 1, j1, i2, j2))
            out |= _cross(f(i1, k1, i2, j2), fold1(k1 + 1, j1))
        return frozenset(out)

    return set(f(0, n - 1, 0, m - 1))
