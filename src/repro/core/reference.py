"""Reference BPMax implementations: the semantics oracle and the
"original program" baseline.

Two independent implementations of eqs. (1)-(3):

* :func:`bpmax_recursive` — memoized recursion written to mirror the
  published recurrence verbatim, including the empty-window conventions
  (``F`` with an empty strand-1 window equals ``S2``, etc.).  The oracle
  every optimized engine is tested against.
* :class:`BaselineBPMax` — the pure-Python "diagonal-by-diagonal"
  loop nest standing in for the original hand-written BPMax program the
  paper measures its >100x speedup against.  Scalar updates, reduction
  index ``k2`` innermost (the order that prohibits vectorization).

Both compute the five reductions explicitly:

    R0 = max_{k1, k2} F[i1,k1,i2,k2] + F[k1+1,j1,k2+1,j2]
    R1 = max_{k2} S2[i2,k2] + F[i1,j1,k2+1,j2]
    R2 = max_{k2} F[i1,j1,i2,k2] + S2[k2+1,j2]
    R3 = max_{k1} S1[i1,k1] + F[k1+1,j1,i2,j2]
    R4 = max_{k1} F[i1,k1,i2,j2] + S1[k1+1,j1]

and the combination

    F = max( closure1, closure2, H )
    H = max( S1[i1,j1] + S2[i2,j2], R0, R1, R2, R3, R4 )

with base case ``F[i1,i1,i2,i2] = iscore(i1, i2)``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import trace
from ..rna.nussinov import nussinov, nussinov_logspace
from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..rna.sequence import RnaSequence
from ..semiring import check_engine_semiring
from .tables import FTable

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.checkpoint import CheckpointManager
    from ..robust.deadline import Deadline
    from ..robust.faults import FaultPlan

__all__ = ["BpmaxInputs", "prepare_inputs", "bpmax_recursive", "BaselineBPMax"]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class BpmaxInputs:
    """Precomputed score and S tables shared by every engine."""

    n: int
    m: int
    score1: np.ndarray  # (n, n) intramolecular pair weights, strand 1
    score2: np.ndarray  # (m, m) strand 2
    iscore: np.ndarray  # (n, m) intermolecular pair weights
    s1: np.ndarray  # (n, n) Nussinov table, strand 1
    s2: np.ndarray  # (m, m) strand 2
    #: canonical name of the semiring the tables were built for; the
    #: S tables are max-folds under max-plus and log-partition tables
    #: under logsumexp, so inputs are only valid for their own algebra
    semiring: str = "max-plus"


def prepare_inputs(
    seq1: RnaSequence | str,
    seq2: RnaSequence | str,
    model: ScoringModel = DEFAULT_MODEL,
    semiring: str = "max-plus",
) -> BpmaxInputs:
    """Build score tables and fold both strands (the S1/S2 stage).

    ``semiring`` selects the algebra the tables are prepared for:
    ``"max-plus"`` (BPMax, float32, exact) folds each strand with the
    weighted Nussinov max-recurrence; ``"logsumexp"`` (BPPart, float64)
    folds with :func:`~repro.rna.nussinov.nussinov_logspace` and casts
    every score table to the semiring's compute dtype.
    """
    sr = check_engine_semiring(semiring)
    s1seq = seq1 if isinstance(seq1, RnaSequence) else RnaSequence(seq1)
    s2seq = seq2 if isinstance(seq2, RnaSequence) else RnaSequence(seq2)
    if len(s1seq) == 0 or len(s2seq) == 0:
        raise ValueError("both sequences must be non-empty")
    if sr.name == "max-plus":
        fold1, fold2 = nussinov(s1seq, model), nussinov(s2seq, model)
        cast = lambda t: t  # noqa: E731 - keep the exact float32 tables
    else:
        fold1 = nussinov_logspace(s1seq, model)
        fold2 = nussinov_logspace(s2seq, model)
        cast = lambda t: t.astype(sr.dtype)  # noqa: E731
    return BpmaxInputs(
        n=len(s1seq),
        m=len(s2seq),
        score1=cast(model.score_table(s1seq.codes)),
        score2=cast(model.score_table(s2seq.codes)),
        iscore=cast(model.iscore_table(s1seq.codes, s2seq.codes)),
        s1=fold1,
        s2=fold2,
        semiring=sr.name,
    )


def bpmax_recursive(
    inputs: BpmaxInputs,
    full_table: bool = False,
) -> float | tuple[float, dict[tuple[int, int, int, int], float]]:
    """Memoized-recursion oracle for BPMax.

    Returns the interaction score ``F[0, n-1, 0, m-1]``; with
    ``full_table=True`` also the dict of every computed F entry.
    """
    if inputs.semiring != "max-plus":
        raise ValueError(
            f"bpmax_recursive is the max-plus oracle; inputs were prepared "
            f"for {inputs.semiring!r} (use repro.core.bppart.bppart_recursive)"
        )
    n, m = inputs.n, inputs.m
    s1, s2 = inputs.s1, inputs.s2
    score1, score2, iscore = inputs.score1, inputs.score2, inputs.iscore
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000 + 50 * n * m))

    @lru_cache(maxsize=None)
    def f(i1: int, j1: int, i2: int, j2: int) -> float:
        # empty-window conventions (the paper's first two cases)
        if j1 < i1 and j2 < i2:
            return 0.0
        if j1 < i1:
            return float(s2[i2, j2])
        if j2 < i2:
            return float(s1[i1, j1])
        if i1 == j1 and i2 == j2:
            return float(iscore[i1, i2])
        best = NEG_INF
        # intramolecular closures
        if j1 > i1:
            best = max(best, f(i1 + 1, j1 - 1, i2, j2) + float(score1[i1, j1]))
        if j2 > i2:
            best = max(best, f(i1, j1, i2 + 1, j2 - 1) + float(score2[i2, j2]))
        # H: independent folds + the five reductions
        best = max(best, float(s1[i1, j1]) + float(s2[i2, j2]))
        for k1 in range(i1, j1):  # R0
            for k2 in range(i2, j2):
                best = max(best, f(i1, k1, i2, k2) + f(k1 + 1, j1, k2 + 1, j2))
        for k2 in range(i2, j2):  # R1, R2
            best = max(best, float(s2[i2, k2]) + f(i1, j1, k2 + 1, j2))
            best = max(best, f(i1, j1, i2, k2) + float(s2[k2 + 1, j2]))
        for k1 in range(i1, j1):  # R3, R4
            best = max(best, float(s1[i1, k1]) + f(k1 + 1, j1, i2, j2))
            best = max(best, f(i1, k1, i2, j2) + float(s1[k1 + 1, j1]))
        return best

    score = f(0, n - 1, 0, m - 1)
    if not full_table:
        return score
    table = {
        (i1, j1, i2, j2): f(i1, j1, i2, j2)
        for i1 in range(n)
        for j1 in range(i1, n)
        for i2 in range(m)
        for j2 in range(i2, m)
    }
    return score, table


class BaselineBPMax:
    """The "original BPMax program": scalar diagonal-by-diagonal loops.

    Mirrors the execution order the paper attributes to the original
    implementation, ``(i1,j1,i2,j2,k1,k2 -> j1-i1, j2-i2, i1, i2, k1, k2)``:
    outer diagonals of the outer triangle, inner diagonals within, scalar
    accumulation with the reduction indices innermost.
    """

    name = "baseline"

    def __init__(self, inputs: BpmaxInputs) -> None:
        if inputs.semiring != "max-plus":
            raise ValueError(
                "the baseline engine reproduces the original max-plus "
                f"program only; inputs were prepared for {inputs.semiring!r} "
                "(use a vectorized variant)"
            )
        self.inputs = inputs
        self.table = FTable(inputs.n, inputs.m)

    def run(
        self,
        *,
        checkpoint: "CheckpointManager | None" = None,
        deadline: "Deadline | None" = None,
        faults: "FaultPlan | None" = None,
        resume: frozenset[tuple[int, int]] | None = None,
    ) -> float:
        """Fill the whole table; return the final score.

        A window reads other windows only at strictly shorter outer
        spans, so the nest runs window-major within each outer diagonal
        (numerically identical to the original ``d1, d2, i1, i2``
        order).  That makes every outer diagonal a natural boundary for
        the robustness hooks: ``deadline`` is polled and ``checkpoint``
        snapshots there, ``faults`` is polled per window, and windows in
        ``resume`` (pre-loaded from a checkpoint) are skipped.
        """
        inp = self.inputs
        n, m = inp.n, inp.m
        s1, s2 = inp.s1, inp.s2
        score1, score2, iscore = inp.score1, inp.score2, inp.iscore
        done = frozenset() if resume is None else frozenset(resume)
        tri = {
            (i1, j1): self.table.alloc(i1, j1)
            for i1 in range(n)
            for j1 in range(i1, n)
        }

        with trace("engine.run", variant="baseline", n=n, m=m):
            self._fill(
                n, m, s1, s2, score1, score2, iscore, tri, done,
                checkpoint, deadline, faults,
            )
        return float(tri[(0, n - 1)][0, m - 1])

    def _fill(
        self, n, m, s1, s2, score1, score2, iscore, tri, done,
        checkpoint, deadline, faults,
    ) -> None:
        counters = _metrics_active()

        def fget(i1: int, j1: int, i2: int, j2: int) -> float:
            # empty-window conventions resolved at read time
            if j1 < i1 and j2 < i2:
                return 0.0
            if j1 < i1:
                return float(s2[i2, j2])
            if j2 < i2:
                return float(s1[i1, j1])
            return float(tri[(i1, j1)][i2, j2])

        for d1 in range(n):  # outer diagonal j1 - i1
            if deadline is not None:
                deadline.check(f"outer diagonal {d1}")
            for i1 in range(n - d1):
                j1 = i1 + d1
                if (i1, j1) in done:
                    continue
                if faults is not None:
                    delay = faults.engine_window(i1, j1)
                    if delay > 0:
                        time.sleep(delay)
                if counters is not None:
                    counters.count_window(d1, m)
                g = tri[(i1, j1)]
                for d2 in range(m):  # inner diagonal j2 - i2
                    for i2 in range(m - d2):
                        j2 = i2 + d2
                        if d1 == 0 and d2 == 0:
                            g[i2, j2] = iscore[i1, i2]
                            continue
                        best = NEG_INF
                        if j1 > i1:
                            best = max(
                                best,
                                fget(i1 + 1, j1 - 1, i2, j2) + float(score1[i1, j1]),
                            )
                        if j2 > i2:
                            best = max(
                                best,
                                fget(i1, j1, i2 + 1, j2 - 1) + float(score2[i2, j2]),
                            )
                        best = max(best, float(s1[i1, j1]) + float(s2[i2, j2]))
                        for k1 in range(i1, j1):  # R0 (k2 innermost)
                            for k2 in range(i2, j2):
                                best = max(
                                    best,
                                    fget(i1, k1, i2, k2)
                                    + fget(k1 + 1, j1, k2 + 1, j2),
                                )
                        for k2 in range(i2, j2):  # R1, R2
                            best = max(
                                best, float(s2[i2, k2]) + fget(i1, j1, k2 + 1, j2)
                            )
                            best = max(
                                best, fget(i1, j1, i2, k2) + float(s2[k2 + 1, j2])
                            )
                        for k1 in range(i1, j1):  # R3, R4
                            best = max(
                                best, float(s1[i1, k1]) + fget(k1 + 1, j1, i2, j2)
                            )
                            best = max(
                                best, fget(i1, k1, i2, j2) + float(s1[k1 + 1, j1])
                            )
                        g[i2, j2] = best
                if checkpoint is not None:
                    checkpoint.mark_done(i1, j1)
            if checkpoint is not None:
                checkpoint.maybe_save(self.table)
