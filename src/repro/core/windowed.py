"""Windowed BPMax: sliding-window interaction scanning.

The related work (paper §II) notes Gildemaster's GPU implementation can
only process "a window of nucleotide sequences" at a time; windowing is
also how RRI tools scan a short regulatory RNA along a long transcript.
This module provides the windowed mode as a first-class library feature:

* slide a window of length ``window`` along the long strand with a given
  ``stride``;
* score each window with any BPMax engine (windows reuse one engine
  configuration; the short strand's tables are computed once);
* report both the raw BPMax score and the **interaction gain**
  ``F - (S1 + S2)`` — the pairing added by the interaction over folding
  each molecule separately, which is the quantity that localises binding
  sites (raw scores reward GC-rich windows for their own hairpins);
* optionally reverse the window (``antiparallel=True``, the default):
  BPMax's intermolecular pairs are monotone in both indices, so an
  antiparallel duplex requires one strand reversed — the standard RRI
  convention.

Memory stays bounded: each window's F table is dropped after scoring
(the windowed analogue of the paper's out-of-core motivation).

Two execution paths share the same :class:`ScanResult` shape:
:func:`scan_windows` runs each window on a fresh in-process engine
(accepts every engine kwarg, e.g. ``tile=``), while
:func:`scan_windows_served` routes the sweep through the serving layer
(:func:`repro.core.api.serve_many`) — windows become
:class:`~repro.serve.request.SubmitRequest` objects, so identical
windows (repeats in the target, overlapping strides over homopolymer
runs) are served from the content-addressed result cache instead of
recomputed, and the whole sweep shares batched workspaces.  Both paths
take a ``semiring`` — ``"logsumexp"`` scans report log-partition gains
(BPPart-style enrichment) instead of max-plus score gains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..rna.sequence import RnaSequence
from .engine import ENGINES, make_engine
from .reference import prepare_inputs

__all__ = ["WindowHit", "ScanResult", "scan_windows", "scan_windows_served"]


@dataclass(frozen=True)
class WindowHit:
    """One scored window."""

    start: int  # window start on the long strand (original orientation)
    score: float  # BPMax score of (short, window)
    gain: float  # score - (S1 + S2): the interaction's contribution
    cached: bool = False  # served from the result cache (serve path only)


@dataclass(frozen=True)
class ScanResult:
    """All windows of one scan, plus conveniences."""

    query: str
    target: str
    window: int
    stride: int
    antiparallel: bool
    hits: tuple[WindowHit, ...]

    @property
    def best(self) -> WindowHit:
        if not self.hits:
            raise ValueError("scan produced no windows")
        return max(self.hits, key=lambda h: h.gain)

    def top(self, k: int) -> list[WindowHit]:
        """The k windows with the highest interaction gain."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        return sorted(self.hits, key=lambda h: h.gain, reverse=True)[:k]


def _scan_setup(
    query: RnaSequence | str,
    target: RnaSequence | str,
    window: int,
    stride: int,
    variant: str,
) -> tuple[RnaSequence, RnaSequence, int, list[int]]:
    """Shared validation + window-start enumeration of both scan paths."""
    q = query if isinstance(query, RnaSequence) else RnaSequence(query)
    t = target if isinstance(target, RnaSequence) else RnaSequence(target)
    if len(q) == 0 or len(t) == 0:
        raise ValueError("query and target must be non-empty")
    if stride <= 0:
        raise ValueError(f"stride must be > 0, got {stride}")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    if variant not in ENGINES:
        raise ValueError(f"unknown variant {variant!r}; use one of {ENGINES}")
    window = min(window, len(t))
    starts = list(range(0, len(t) - window + 1, stride))
    if not starts:
        starts = [0]
    return q, t, window, starts


def scan_windows(
    query: RnaSequence | str,
    target: RnaSequence | str,
    window: int = 24,
    stride: int = 6,
    variant: str = "hybrid-tiled",
    model: ScoringModel = DEFAULT_MODEL,
    semiring: str = "max-plus",
    antiparallel: bool = True,
    **engine_kwargs,
) -> ScanResult:
    """Score ``query`` against every window of ``target``.

    Parameters
    ----------
    query: the short strand (e.g. an sRNA); becomes BPMax's outer strand.
    target: the long strand to scan (e.g. an mRNA).
    window: window length on the target (clamped to the target length).
    stride: distance between consecutive window starts.
    variant: BPMax engine for each window.
    semiring: reduction algebra (``"max-plus"`` or ``"logsumexp"``).
    antiparallel: feed windows 3'->5' (reversed), the duplex convention.
    """
    q, t, window, starts = _scan_setup(query, target, window, stride, variant)

    hits: list[WindowHit] = []
    for start in starts:
        piece = RnaSequence(t[start : start + window])
        if antiparallel:
            piece = piece.reversed()
        inputs = prepare_inputs(q, piece, model, semiring=semiring)
        engine = make_engine(inputs, variant, **engine_kwargs)
        score = engine.run()
        independent = float(inputs.s1[0, -1] + inputs.s2[0, -1])
        hits.append(WindowHit(start=start, score=score, gain=score - independent))
        # windowed mode keeps memory bounded: drop the window's table
        for w in engine.table.allocated():
            engine.table.free(*w)
    return ScanResult(
        query=q.seq,
        target=t.seq,
        window=window,
        stride=stride,
        antiparallel=antiparallel,
        hits=tuple(hits),
    )


def scan_windows_served(
    query: RnaSequence | str,
    target: RnaSequence | str,
    window: int = 24,
    stride: int = 6,
    variant: str = "hybrid-tiled",
    model: ScoringModel = DEFAULT_MODEL,
    semiring: str = "max-plus",
    antiparallel: bool = True,
    backend: str | None = None,
    cache: int = 1024,
    scheduler=None,
) -> ScanResult:
    """Windowed sweep through the serving layer, with per-window caching.

    Each window becomes one :class:`~repro.serve.request.SubmitRequest`
    (priority class ``"scan"``) and the whole sweep goes through
    :func:`repro.core.api.serve_many`: identical windows are deduplicated
    against the content-addressed result cache — their hits come back
    with ``cached=True`` — and distinct same-shape windows share batched
    kernel workspaces.  Pass an open
    :class:`~repro.serve.scheduler.BatchScheduler` as ``scheduler`` to
    keep the window cache warm across successive scans (e.g. the same
    sRNA against many transcripts).

    The interaction gain subtracts per-window independent folding scores
    computed in the *same* semiring (log-space Nussinov for
    ``"logsumexp"``), so max-plus and log-partition sweeps rank windows
    by comparable enrichment quantities.
    """
    from ..robust.errors import BpmaxError
    from ..serve.request import SubmitRequest
    from .api import serve_many

    q, t, window, starts = _scan_setup(query, target, window, stride, variant)

    pieces: list[RnaSequence] = []
    requests: list[SubmitRequest] = []
    for start in starts:
        piece = RnaSequence(t[start : start + window])
        if antiparallel:
            piece = piece.reversed()
        pieces.append(piece)
        requests.append(
            SubmitRequest(
                seq1=q.seq,
                seq2=piece.seq,
                id=f"w{start}",
                variant=variant,
                backend=backend,
                model=model,
                semiring=semiring,
                priority="scan",
            )
        )
    results = serve_many(requests, cache=cache, scheduler=scheduler)

    # Independent folding scores for the gain: s1 is the same for every
    # window; s2 is memoized by window content, so repeated windows cost
    # one Nussinov fill total (mirroring the serve-side result cache).
    indep2: dict[str, float] = {}
    s1_indep: float | None = None
    hits: list[WindowHit] = []
    for start, piece, res in zip(starts, pieces, results):
        if not res.ok:
            raise BpmaxError(
                f"scan window at {start} failed ({res.error_type}): {res.error}"
            )
        if s1_indep is None or piece.seq not in indep2:
            inputs = prepare_inputs(q, piece, model, semiring=semiring)
            s1_indep = float(inputs.s1[0, -1])
            indep2[piece.seq] = float(inputs.s2[0, -1])
        independent = s1_indep + indep2[piece.seq]
        hits.append(
            WindowHit(
                start=start,
                score=float(res.score),
                gain=float(res.score) - independent,
                cached=res.cached,
            )
        )
    return ScanResult(
        query=q.seq,
        target=t.seq,
        window=window,
        stride=stride,
        antiparallel=antiparallel,
        hits=tuple(hits),
    )
