"""BPMax core: the paper's algorithm, all program versions, and its
mini-Alpha model with the published schedules."""

from .alpha_model import (
    SCHEDULE_TABLES,
    VariantSchedules,
    bpmax_system,
    dmp_system,
    nussinov_system,
    schedules_for,
    target_mapping_for,
)
from .api import BpmaxResult, bpmax, fold
from .bppart import (
    beta_from_celsius,
    correlation_study,
    duplex_partition,
    ensemble_stats,
    partition_exact,
    single_strand_partition,
)
from .enumerate import (
    Structure,
    enumerate_duplexes,
    enumerate_foldings,
    enumerate_structures,
    structure_weight,
)
from .distributed import DistributedBPMax, DistributedReport
from .dmp import DMP_KERNELS, DoubleMaxPlus, dmp_flops, dmp_reference, random_triangles
from .windowed import ScanResult, WindowHit, scan_windows
from .engine import ENGINES, BpmaxEngine, ResilientEngine, make_engine
from .explore import ScheduleCandidate, dmp_candidates, explore_dmp_schedules
from .reference import BaselineBPMax, BpmaxInputs, bpmax_recursive, prepare_inputs
from .tables import FTable, MEMORY_LAYOUTS
from .traceback import InteractionStructure, traceback
from .vectorized import VARIANT_CONFIGS, VectorizedBPMax

__all__ = [
    "SCHEDULE_TABLES",
    "VariantSchedules",
    "bpmax_system",
    "dmp_system",
    "nussinov_system",
    "schedules_for",
    "target_mapping_for",
    "BpmaxResult",
    "bpmax",
    "fold",
    "beta_from_celsius",
    "correlation_study",
    "duplex_partition",
    "ensemble_stats",
    "partition_exact",
    "single_strand_partition",
    "Structure",
    "enumerate_duplexes",
    "enumerate_foldings",
    "enumerate_structures",
    "structure_weight",
    "DistributedBPMax",
    "DistributedReport",
    "ScanResult",
    "WindowHit",
    "scan_windows",
    "DMP_KERNELS",
    "DoubleMaxPlus",
    "dmp_flops",
    "dmp_reference",
    "random_triangles",
    "ENGINES",
    "BpmaxEngine",
    "ResilientEngine",
    "make_engine",
    "ScheduleCandidate",
    "dmp_candidates",
    "explore_dmp_schedules",
    "BaselineBPMax",
    "BpmaxInputs",
    "bpmax_recursive",
    "prepare_inputs",
    "FTable",
    "MEMORY_LAYOUTS",
    "InteractionStructure",
    "traceback",
    "VARIANT_CONFIGS",
    "VectorizedBPMax",
]
