"""Standalone double max-plus computation (paper eq. 4, Phase I).

Phase I isolates the dominant reduction by simplifying BPMax to

    F[i1,j1] = max_{k1, k2} F[i1,k1][i2,k2] + F[k1+1,j1][k2+1,j2]      (4)

over inner triangles: a "multiple max-plus matrix product" in the spirit
of Varadarajan's surrogate mini-app.  Diagonal windows (j1 == i1) are
inputs (random triangles); every longer window accumulates max-plus
products of its splits.

Variants mirror the paper's schedules (Table I, Figs. 13/14/18):

* ``base`` — pure-Python scalar loops, k2 innermost;
* ``scalar-k-inner`` — NumPy reads but per-element reductions (the
  permutation that prohibits vectorization);
* ``vectorized`` — j2 innermost, NumPy row operations (auto-vectorized);
* ``tiled`` — the Phase-II/III tiled (i2 x k2 x j2) kernel;

each combined with the two triangle traversal orders (diagonal vs
bottom-up-left-to-right), which the paper finds nearly equivalent.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..machine.counters import k1 as _k1_splits, t1 as _t1_cells
from ..observe.metrics import active as _metrics_active
from ..observe.tracer import trace
from ..semiring.maxplus import (
    NEG_INF,
    maxplus_matmul_naive,
    maxplus_matmul_register,
    maxplus_matmul_scalar_kinner,
    maxplus_matmul_tiled,
    maxplus_matmul_vectorized,
)

__all__ = [
    "random_triangles",
    "dmp_reference",
    "DoubleMaxPlus",
    "DMP_KERNELS",
    "dmp_flops",
]


def random_triangles(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> list[np.ndarray]:
    """Input triangles ``T[i1] = F[i1, i1]``: upper-triangular (m, m)
    float32 matrices with ``-inf`` below the diagonal."""
    if n <= 0 or m <= 0:
        raise ValueError(f"sizes must be > 0, got ({n}, {m})")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    out = []
    for _ in range(n):
        t = rng.random((m, m)).astype(np.float32)
        t[np.tril_indices(m, k=-1)] = NEG_INF
        out.append(t)
    return out


def _shifted(b: np.ndarray) -> np.ndarray:
    """``B'[k2, j2] = B[k2+1, j2]`` with a -inf last row.

    With upper-triangular operands this encodes the split-range
    constraints: ``A[i2,k2]`` is -inf for ``k2 < i2`` and ``B'[k2,j2]``
    is -inf for ``k2+1 > j2``, so an unrestricted max-plus product over
    ``k2`` equals the restricted reduction of eq. (4).
    """
    out = np.full_like(b, NEG_INF)
    out[:-1, :] = b[1:, :]
    return out


def dmp_reference(triangles: list[np.ndarray]) -> dict[tuple[int, int], np.ndarray]:
    """Scalar-loop oracle for eq. (4): returns every window's triangle."""
    n = len(triangles)
    m = triangles[0].shape[0]
    f: dict[tuple[int, int], np.ndarray] = {
        (i, i): triangles[i].copy() for i in range(n)
    }
    for span in range(1, n):
        for i1 in range(n - span):
            j1 = i1 + span
            g = np.full((m, m), NEG_INF, dtype=np.float32)
            for i2 in range(m):
                for j2 in range(i2, m):
                    best = NEG_INF
                    for k1 in range(i1, j1):
                        a = f[(i1, k1)]
                        b = f[(k1 + 1, j1)]
                        for k2 in range(i2, j2):
                            v = a[i2, k2] + b[k2 + 1, j2]
                            if v > best:
                                best = v
                    g[i2, j2] = best
            f[(i1, j1)] = g
    return f


def dmp_flops(n: int, m: int) -> int:
    """Total FLOPs of the standalone computation (2 per max-plus op)."""
    from ..machine.counters import flops_r0

    return flops_r0(n, m)


#: name -> accumulating kernel(a, b, c, **kw)
DMP_KERNELS: dict[str, Callable] = {
    "naive": maxplus_matmul_naive,
    "scalar-k-inner": maxplus_matmul_scalar_kinner,
    "vectorized": maxplus_matmul_vectorized,
    "tiled": maxplus_matmul_tiled,
    "register-tiled": maxplus_matmul_register,
}


class DoubleMaxPlus:
    """Configurable standalone double max-plus engine.

    Parameters
    ----------
    triangles: diagonal input triangles (``random_triangles`` output).
    kernel: one of :data:`DMP_KERNELS`.
    order: outer traversal — ``"diagonal"`` (by span) or ``"bottomup"``
        (by ``(-i1, j1)``: bottom-up then left-to-right).
    tile: (i2, k2, j2) tile extents for the tiled kernel (0 = untiled).
    backend: optional :mod:`repro.kernels` backend name (or resolved
        backend) — routes each window through the stacked batched
        reduction with a zero-allocation workspace instead of the
        per-split ``kernel``.
    """

    def __init__(
        self,
        triangles: list[np.ndarray],
        kernel: str = "vectorized",
        order: str = "diagonal",
        tile: tuple[int, int, int] = (32, 4, 0),
        backend: "str | None" = None,
    ) -> None:
        if kernel not in DMP_KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; use one of {list(DMP_KERNELS)}")
        if order not in ("diagonal", "bottomup"):
            raise ValueError(f"order must be 'diagonal' or 'bottomup', got {order!r}")
        if not triangles:
            raise ValueError("need at least one input triangle")
        m = triangles[0].shape[0]
        for t in triangles:
            if t.shape != (m, m):
                raise ValueError("all triangles must share one shape")
        self.n = len(triangles)
        self.m = m
        self.kernel_name = kernel
        self.order = order
        self.tile = tile
        if backend is not None:
            from ..kernels import Workspace, get_backend

            self.backend = get_backend(backend)
            self._ws = Workspace(m, max(self.n - 1, 0))
        else:
            self.backend = None
            self._ws = None
        self.f: dict[tuple[int, int], np.ndarray] = {
            (i, i): np.asarray(t, dtype=np.float32).copy()
            for i, t in enumerate(triangles)
        }
        # shifted right operands, computed once per completed window
        self._shift: dict[tuple[int, int], np.ndarray] = {}

    def _windows(self) -> Iterator[tuple[int, int]]:
        if self.order == "diagonal":
            for span in range(1, self.n):
                for i1 in range(self.n - span):
                    yield (i1, i1 + span)
        else:  # bottom-up, then left to right: sort by (-i1, j1)
            for i1 in range(self.n - 1, -1, -1):
                for j1 in range(i1 + 1, self.n):
                    yield (i1, j1)

    def _shifted_of(self, key: tuple[int, int]) -> np.ndarray:
        """Cached shifted copy of a completed window's triangle."""
        s = self._shift.get(key)
        if s is None:
            s = _shifted(self.f[key])
            self._shift[key] = s
        return s

    def _accumulate(self, a: np.ndarray, bkey: tuple[int, int], c: np.ndarray) -> None:
        kern = DMP_KERNELS[self.kernel_name]
        if self.kernel_name in ("tiled", "register-tiled"):
            kern(a, self._shifted_of(bkey), c, tile=self.tile)
        else:
            kern(a, self._shifted_of(bkey), c)

    def _window_batched(self, i1: int, j1: int, c: np.ndarray) -> None:
        ws = self._ws
        k = j1 - i1
        astack, bstack, _ = ws.stacks(k)
        for s in range(k):
            k1 = i1 + s
            np.copyto(astack[s], self.f[(i1, k1)])
            np.copyto(bstack[s], self._shifted_of((k1 + 1, j1)))
        self.backend.batched_r0(
            astack, bstack, c, tmp=ws.tmp3(k), red=ws.red, triangular=True
        )

    def run(self) -> dict[tuple[int, int], np.ndarray]:
        """Fill every window; return the table dict."""
        counters = _metrics_active()
        with trace(
            "dmp.run",
            n=self.n,
            m=self.m,
            kernel=self.kernel_name,
            order=self.order,
            backend=self.backend.name if self.backend is not None else None,
        ):
            for i1, j1 in self._windows():
                if counters is not None:
                    # the standalone mini-app computes only the R0 term
                    counters.windows += 1
                    counters.cells += _t1_cells(self.m)
                    counters.ops_r0 += (j1 - i1) * _k1_splits(self.m)
                c = np.full((self.m, self.m), NEG_INF, dtype=np.float32)
                if self.backend is not None:
                    self._window_batched(i1, j1, c)
                else:
                    for k1 in range(i1, j1):
                        self._accumulate(self.f[(i1, k1)], (k1 + 1, j1), c)
                self.f[(i1, j1)] = c
        return self.f

    def result(self) -> np.ndarray:
        """The root window's triangle ``F[0, n-1]``."""
        key = (0, self.n - 1)
        if key not in self.f:
            raise RuntimeError("run() has not been called")
        return self.f[key]
