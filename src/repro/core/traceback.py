"""Interaction-structure recovery from a filled F table (extension).

BPMax as published reports only the optimal score; downstream users
usually want the structure too.  This module walks the filled table
backwards through the recurrence, recovering one optimal set of

* intramolecular pairs on strand 1 and strand 2, and
* intermolecular pairs between the strands,

whose total weight equals the BPMax score (asserted by tests).  The
structure is pseudoknot-free / non-crossing by construction, mirroring
the case analysis of eq. (1)-(3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rna.nussinov import pairs_to_dotbracket
from .reference import BpmaxInputs
from .tables import FTable

__all__ = ["InteractionStructure", "traceback"]

_EPS = 1e-3


@dataclass
class InteractionStructure:
    """One optimal BPMax structure."""

    n: int
    m: int
    score: float
    pairs1: list[tuple[int, int]] = field(default_factory=list)
    pairs2: list[tuple[int, int]] = field(default_factory=list)
    inter: list[tuple[int, int]] = field(default_factory=list)

    def weight(self, inputs: BpmaxInputs) -> float:
        """Total pair weight of the structure (should equal ``score``)."""
        total = 0.0
        for i, j in self.pairs1:
            total += float(inputs.score1[i, j])
        for i, j in self.pairs2:
            total += float(inputs.score2[i, j])
        for i1, i2 in self.inter:
            total += float(inputs.iscore[i1, i2])
        return total

    def dotbracket(self) -> tuple[str, str]:
        """Dot-bracket strings of the two strands (intramolecular pairs;
        intermolecular partners marked with ``*``)."""
        db1 = list(pairs_to_dotbracket(self.n, sorted(self.pairs1)))
        db2 = list(pairs_to_dotbracket(self.m, sorted(self.pairs2)))
        for i1, i2 in self.inter:
            db1[i1] = "*"
            db2[i2] = "*"
        return "".join(db1), "".join(db2)


def _nussinov_pairs(
    s: np.ndarray, w: np.ndarray, i0: int, j0: int
) -> list[tuple[int, int]]:
    """Traceback of a weighted Nussinov window ``[i0, j0]``."""
    pairs: list[tuple[int, int]] = []
    stack = [(i0, j0)] if j0 > i0 else []
    while stack:
        i, j = stack.pop()
        if j <= i:
            continue
        t = s[i, j]
        if abs(t - s[i + 1, j]) < _EPS:
            stack.append((i + 1, j))
            continue
        if abs(t - s[i, j - 1]) < _EPS:
            stack.append((i, j - 1))
            continue
        inner = s[i + 1, j - 1] if j - i >= 2 else 0.0
        if w[i, j] > 0 and abs(t - (inner + w[i, j])) < _EPS:
            pairs.append((i, j))
            stack.append((i + 1, j - 1))
            continue
        for k in range(i, j):
            if abs(t - (s[i, k] + s[k + 1, j])) < _EPS:
                stack.append((i, k))
                stack.append((k + 1, j))
                break
        else:  # pragma: no cover - inconsistent table
            raise AssertionError(f"Nussinov traceback stuck at ({i}, {j})")
    return pairs


def traceback(inputs: BpmaxInputs, table: FTable) -> InteractionStructure:
    """Recover one optimal structure from a fully computed table."""
    n, m = inputs.n, inputs.m
    s1, s2 = inputs.s1, inputs.s2
    score1, score2, iscore = inputs.score1, inputs.score2, inputs.iscore
    out = InteractionStructure(n=n, m=m, score=table.get(0, n - 1, 0, m - 1))

    def fval(i1: int, j1: int, i2: int, j2: int) -> float:
        if j1 < i1 and j2 < i2:
            return 0.0
        if j1 < i1:
            return float(s2[i2, j2])
        if j2 < i2:
            return float(s1[i1, j1])
        return table.get(i1, j1, i2, j2)

    stack: list[tuple[int, int, int, int]] = [(0, n - 1, 0, m - 1)]
    while stack:
        i1, j1, i2, j2 = stack.pop()
        # delegated single-strand windows
        if j1 < i1 and j2 < i2:
            continue
        if j1 < i1:
            out.pairs2.extend(_nussinov_pairs(s2, score2, i2, j2))
            continue
        if j2 < i2:
            out.pairs1.extend(_nussinov_pairs(s1, score1, i1, j1))
            continue
        t = fval(i1, j1, i2, j2)
        if i1 == j1 and i2 == j2:
            if iscore[i1, i2] > 0 and abs(t - iscore[i1, i2]) < _EPS:
                out.inter.append((i1, i2))
            continue
        # closure of (i1, j1)
        if j1 > i1 and abs(t - (fval(i1 + 1, j1 - 1, i2, j2) + score1[i1, j1])) < _EPS:
            if score1[i1, j1] > 0:
                out.pairs1.append((i1, j1))
                stack.append((i1 + 1, j1 - 1, i2, j2))
                continue
        # closure of (i2, j2)
        if j2 > i2 and abs(t - (fval(i1, j1, i2 + 1, j2 - 1) + score2[i2, j2])) < _EPS:
            if score2[i2, j2] > 0:
                out.pairs2.append((i2, j2))
                stack.append((i1, j1, i2 + 1, j2 - 1))
                continue
        # independent folds
        if abs(t - (s1[i1, j1] + s2[i2, j2])) < _EPS:
            out.pairs1.extend(_nussinov_pairs(s1, score1, i1, j1))
            out.pairs2.extend(_nussinov_pairs(s2, score2, i2, j2))
            continue
        matched = False
        # R0: the double split
        for k1 in range(i1, j1):
            if matched:
                break
            for k2 in range(i2, j2):
                if abs(t - (fval(i1, k1, i2, k2) + fval(k1 + 1, j1, k2 + 1, j2))) < _EPS:
                    stack.append((i1, k1, i2, k2))
                    stack.append((k1 + 1, j1, k2 + 1, j2))
                    matched = True
                    break
        if matched:
            continue
        for k2 in range(i2, j2):  # R1 / R2
            if abs(t - (s2[i2, k2] + fval(i1, j1, k2 + 1, j2))) < _EPS:
                out.pairs2.extend(_nussinov_pairs(s2, score2, i2, k2))
                stack.append((i1, j1, k2 + 1, j2))
                matched = True
                break
            if abs(t - (fval(i1, j1, i2, k2) + s2[k2 + 1, j2])) < _EPS:
                out.pairs2.extend(_nussinov_pairs(s2, score2, k2 + 1, j2))
                stack.append((i1, j1, i2, k2))
                matched = True
                break
        if matched:
            continue
        for k1 in range(i1, j1):  # R3 / R4
            if abs(t - (s1[i1, k1] + fval(k1 + 1, j1, i2, j2))) < _EPS:
                out.pairs1.extend(_nussinov_pairs(s1, score1, i1, k1))
                stack.append((k1 + 1, j1, i2, j2))
                matched = True
                break
            if abs(t - (fval(i1, k1, i2, j2) + s1[k1 + 1, j1])) < _EPS:
                out.pairs1.extend(_nussinov_pairs(s1, score1, k1 + 1, j1))
                stack.append((i1, k1, i2, j2))
                matched = True
                break
        if matched:
            continue
        # unpairable closures with weight 0 fall through to here
        if j1 > i1 and abs(t - fval(i1 + 1, j1 - 1, i2, j2)) < _EPS:
            stack.append((i1 + 1, j1 - 1, i2, j2))
            continue
        if j2 > i2 and abs(t - fval(i1, j1, i2 + 1, j2 - 1)) < _EPS:
            stack.append((i1, j1, i2 + 1, j2 - 1))
            continue
        raise AssertionError(
            f"traceback stuck at window ({i1}, {j1}, {i2}, {j2}) value {t}"
        )
    out.pairs1 = sorted(set(out.pairs1))
    out.pairs2 = sorted(set(out.pairs2))
    out.inter = sorted(set(out.inter))
    return out
