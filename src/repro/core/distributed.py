"""Distributed BPMax over the simulated cluster (MPI future work).

The paper's conclusion plans to "distribute the computation over a
cluster using MPI".  This module implements that design against
:class:`~repro.parallel.mpi.SimComm`:

* **decomposition** — outer windows ``(i1, j1)`` are distributed
  block-cyclically by row: rank ``i1 % P`` owns every window of row
  ``i1``.  Computing ``(i1, j1)`` needs the triangles ``(i1, k1)``
  (local by construction) and ``(k1+1, j1)`` for ``i1 <= k1 < j1``
  (owned by rows ``i1+1 .. j1``, i.e. remote);
* **schedule** — anti-diagonal wavefronts: all windows of one diagonal
  ``d1 = j1 - i1`` are independent and run concurrently;
* **communication** — before a wavefront, each rank receives the
  remote triangles its windows need (one message per missing triangle,
  ``M(M+1)/2 * 4`` useful bytes each, payload is the real array) and
  caches them for later diagonals;
* **computation** — numerically identical to the shared-memory engine:
  the same per-window routine runs on the owner rank, so the final
  score is bit-for-bit the hybrid engine's, while the simulated clocks
  yield projected makespan / speedup / communication volume;
* **self-healing** — with a :class:`~repro.robust.faults.FaultPlan`
  attached, dropped triangle transfers are detected by the receiver's
  timeout and re-sent (bounded by ``max_retries``), and a rank death is
  detected at the wavefront boundary: the dead rank's rows are
  reassigned block-cyclically to the survivors, which recompute the
  orphaned triangles that died with it.  The recovery work is reported
  in :class:`DistributedReport` (``retries`` / ``recovered_windows`` /
  ``redundant_bytes`` / ``dead_ranks``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.counters import k1 as _k1_count
from ..observe.tracer import event, trace
from ..parallel.mpi import ClusterSpec, SimComm
from ..robust.deadline import Deadline
from ..robust.errors import MessageLost, RankFailure
from ..robust.faults import FaultPlan
from .reference import BpmaxInputs
from .vectorized import VectorizedBPMax

__all__ = ["DistributedReport", "DistributedBPMax"]


@dataclass(frozen=True)
class DistributedReport:
    """Outcome of one simulated distributed run."""

    score: float
    ranks: int
    makespan_s: float
    serial_s: float
    messages: int
    bytes_sent: int
    retries: int = 0
    recovered_windows: int = 0
    redundant_bytes: int = 0
    dead_ranks: tuple[int, ...] = ()

    @property
    def speedup(self) -> float:
        return self.serial_s / self.makespan_s if self.makespan_s > 0 else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.ranks


class DistributedBPMax:
    """BPMax across a simulated cluster.

    Parameters
    ----------
    inputs: the usual precomputed tables.
    cluster: cluster spec (ranks, per-rank FLOPS, interconnect).
    execute: run the real numerics (default) or project timing only.
    m_effective: inner length used for work/message sizing in
        projection mode (e.g. 2500 for the paper-scale workload).
    faults: optional fault plan (message drops, rank deaths).
    max_retries: re-send attempts per dropped triangle transfer.
    """

    def __init__(
        self,
        inputs: BpmaxInputs,
        cluster: ClusterSpec,
        execute: bool = True,
        m_effective: int | None = None,
        faults: FaultPlan | None = None,
        max_retries: int = 3,
    ) -> None:
        """``execute=False`` switches to projection mode: the numeric
        engine is skipped and ``m_effective`` (default: the real m)
        sets the work and message sizes — used to project scaling at
        the paper's 16 x 2500 scale without computing it."""
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.inputs = inputs
        self.cluster = cluster
        self.execute = execute
        self.m_eff = m_effective if m_effective is not None else inputs.m
        if self.m_eff < 1:
            raise ValueError(f"m_effective must be >= 1, got {self.m_eff}")
        self.faults = faults
        self.max_retries = max_retries
        self.comm = SimComm(cluster, faults=faults)
        # rows not remapped by a rank death stay block-cyclic (i1 % ranks)
        self._row_remap: dict[int, int] = {}
        # the actual numerics run through the shared-memory engine, with
        # this orchestrator deciding *when and where* each window runs
        self._engine = VectorizedBPMax(inputs, variant="hybrid")
        self._dummy = np.empty(self.triangle_bytes() // 4, dtype=np.float32)

    # -- decomposition ------------------------------------------------------

    def owner(self, i1: int) -> int:
        """Owning rank of every window in outer row ``i1``."""
        return self._row_remap.get(i1, i1 % self.cluster.ranks)

    def _window_flops(self, i1: int, j1: int) -> float:
        """Work of one window: its share of R0/R3/R4 plus row finishing.

        A window with ``s = j1 - i1`` splits performs ``s`` triangle
        max-plus products of ``K1(M)`` operations each, plus the
        O(M^3)-ish R1/R2 row finishing.
        """
        m = self.m_eff
        splits = j1 - i1
        product_ops = 2.0 * splits * _k1_count(m)
        finishing_ops = 2.0 * 2.0 * _k1_count(m)  # R1 + R2 for this window
        return product_ops + finishing_ops

    def triangle_bytes(self) -> int:
        m = self.m_eff
        return m * (m + 1) // 2 * 4

    # -- fault handling -----------------------------------------------------

    def _handle_rank_death(
        self,
        rank: int,
        d1: int,
        cached: set[tuple[int, tuple[int, int]]],
        comm: SimComm,
    ) -> int:
        """Reassign a dead rank's rows and recompute its lost triangles.

        Every window of diagonals ``< d1`` owned by the dead rank lived
        only in its memory; the new owners recompute them (their own
        dependencies are still alive by the block-cyclic interleave).
        Returns the number of recovered windows.
        """
        event("dist.rank_death", rank=rank, diagonal=d1)
        comm.kill(rank)
        survivors = comm.alive_ranks()
        if not survivors:
            raise RankFailure("no surviving ranks to take over")
        n = self.inputs.n
        orphan_rows = [i for i in range(n) if self.owner(i) == rank]
        for idx, row in enumerate(orphan_rows):
            self._row_remap[row] = survivors[idx % len(survivors)]
        # the dead rank's received-triangle cache is gone with it
        cached -= {entry for entry in cached if entry[0] == rank}
        recovered = 0
        for row in orphan_rows:
            new_owner = self.owner(row)
            for j1 in range(row, min(row + d1, n)):
                if self.execute:
                    self._engine._compute_window(row, j1)
                comm.compute(new_owner, flops=self._window_flops(row, j1))
                cached.add((new_owner, (row, j1)))
                recovered += 1
        event("dist.recovered", rank=rank, windows=recovered)
        return recovered

    def _transfer(self, payload, src: int, dest: int, comm: SimComm) -> tuple[int, int]:
        """One triangle transfer with drop-retry; returns (retries, redundant)."""
        retries = 0
        redundant = 0
        nbytes = payload.nbytes if isinstance(payload, np.ndarray) else 64
        for _attempt in range(self.max_retries + 1):
            comm.send(payload, source=src, dest=dest)
            try:
                comm.recv(source=src, dest=dest)
                return retries, redundant
            except MessageLost:
                event("dist.transfer_retry", src=src, dest=dest, attempt=_attempt)
                retries += 1
                redundant += nbytes
        raise RankFailure(
            f"triangle transfer {src} -> {dest} lost "
            f"{self.max_retries + 1} times; giving up"
        )

    # -- execution -------------------------------------------------------------

    def run(self, deadline: Deadline | None = None) -> DistributedReport:
        with trace(
            "dist.run",
            ranks=self.cluster.ranks,
            n=self.inputs.n,
            m=self.m_eff,
            execute=self.execute,
        ):
            return self._run(deadline)

    def _run(self, deadline: Deadline | None) -> DistributedReport:
        inputs = self.inputs
        n = inputs.n
        comm = self.comm
        # per-rank cache of remote rows' triangles: (rank, (i1, j1))
        cached: set[tuple[int, tuple[int, int]]] = set()
        serial_seconds = 0.0
        retries = 0
        recovered = 0
        redundant = 0

        # diagonal 0: every rank computes its own rows' base windows
        for i1 in range(n):
            r = self.owner(i1)
            if self.execute:
                self._engine._compute_window(i1, i1)
            w = self._window_flops(i1, i1) + 1.0
            comm.compute(r, flops=w)
            serial_seconds += w / self.cluster.rank_flops
            cached.add((r, (i1, i1)))

        for d1 in range(1, n):
            with trace("dist.wavefront", d1=d1, windows=n - d1):
                if deadline is not None:
                    deadline.check(f"wavefront {d1}")
                # failure detection: the wavefront timeout notices dead ranks
                if self.faults is not None:
                    for rank in comm.alive_ranks():
                        if self.faults.rank_dies(rank, d1):
                            recovered += self._handle_rank_death(
                                rank, d1, cached, comm
                            )
                # communication phase: fetch missing remote triangles
                for i1 in range(n - d1):
                    j1 = i1 + d1
                    r = self.owner(i1)
                    for k1 in range(i1, j1):
                        need = (k1 + 1, j1)
                        src = self.owner(k1 + 1)
                        if src == r or (r, need) in cached:
                            continue
                        payload = (
                            self._engine.table.inner(*need)
                            if self.execute
                            else self._dummy
                        )
                        tr, rb = self._transfer(payload, src, r, comm)
                        retries += tr
                        redundant += rb
                        cached.add((r, need))
                # compute phase: the wavefront's windows run concurrently
                for i1 in range(n - d1):
                    j1 = i1 + d1
                    r = self.owner(i1)
                    if self.execute:
                        self._engine._compute_window(i1, j1)
                    w = self._window_flops(i1, j1)
                    comm.compute(r, flops=w)
                    serial_seconds += w / self.cluster.rank_flops
                    cached.add((r, (i1, j1)))
                # wavefront barrier (the diagonal dependence)
                comm.barrier()

        score = (
            float(self._engine.table.get(0, n - 1, 0, inputs.m - 1))
            if self.execute
            else float("nan")
        )
        return DistributedReport(
            score=score,
            ranks=self.cluster.ranks,
            makespan_s=comm.makespan,
            serial_s=serial_seconds,
            messages=comm.stats.messages,
            bytes_sent=comm.stats.bytes_sent,
            retries=retries,
            recovered_windows=recovered,
            redundant_bytes=redundant,
            dead_ranks=tuple(
                r for r in range(self.cluster.ranks) if not comm.alive[r]
            ),
        )
