"""Engine registry: every BPMax program version behind one interface."""

from __future__ import annotations

from typing import Protocol

from .reference import BaselineBPMax, BpmaxInputs
from .tables import FTable
from .vectorized import VARIANT_CONFIGS, VectorizedBPMax

__all__ = ["BpmaxEngine", "ENGINES", "make_engine"]


class BpmaxEngine(Protocol):
    """Common protocol of every BPMax engine."""

    inputs: BpmaxInputs
    table: FTable

    def run(self) -> float:  # pragma: no cover - protocol
        ...


#: program version name -> constructor kwargs understood by make_engine
ENGINES = ("baseline",) + tuple(VARIANT_CONFIGS)


def make_engine(
    inputs: BpmaxInputs,
    variant: str = "hybrid-tiled",
    **kwargs,
) -> BpmaxEngine:
    """Instantiate a BPMax engine by paper program-version name.

    ``baseline`` is the original scalar diagonal-by-diagonal program;
    ``coarse`` / ``fine`` / ``hybrid`` / ``hybrid-tiled`` are the
    optimized versions of Figs. 15/16.  Extra kwargs (``tile``,
    ``threads``, ``order``, ``kernel``, ``layout``) reach
    :class:`~repro.core.vectorized.VectorizedBPMax`.
    """
    if variant == "baseline":
        if kwargs:
            raise TypeError(f"baseline engine takes no options, got {kwargs}")
        return BaselineBPMax(inputs)
    if variant in VARIANT_CONFIGS:
        return VectorizedBPMax(inputs, variant=variant, **kwargs)
    raise ValueError(f"unknown engine variant {variant!r}; use one of {ENGINES}")
