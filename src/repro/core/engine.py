"""Engine registry: every BPMax program version behind one interface."""

from __future__ import annotations

from typing import Protocol

from ..robust.errors import BpmaxError, DeadlineExceeded, EngineFailure
from ..robust.retry import retry
from .reference import BaselineBPMax, BpmaxInputs
from .tables import FTable
from .vectorized import VARIANT_CONFIGS, VectorizedBPMax

__all__ = ["BpmaxEngine", "ENGINES", "ResilientEngine", "make_engine"]


class BpmaxEngine(Protocol):
    """Common protocol of every BPMax engine."""

    inputs: BpmaxInputs
    table: FTable

    def run(self, **kwargs) -> float:  # pragma: no cover - protocol
        ...


#: program version name -> constructor kwargs understood by make_engine
ENGINES = ("baseline",) + tuple(VARIANT_CONFIGS)


class ResilientEngine:
    """Graceful degradation: a primary engine plus a fallback chain.

    ``run()`` tries each variant of ``chain`` in order; when one crashes
    (any exception other than :class:`DeadlineExceeded`, which no slower
    engine can outrun) the next variant starts from a fresh table.  The
    variants that failed are recorded in :attr:`degraded_from`, and
    :attr:`variant`/:attr:`table` always reflect the engine that
    actually produced the score.  Per-variant transient retry is
    available via ``retries`` (each attempt rebuilds the engine).

    Checkpoint/resume arguments are forwarded to the *primary* variant
    only: a checkpoint written by the primary describes a table the
    fallback rebuilds from scratch anyway, and resuming a fallback from
    a crashed primary's snapshot would blur whose run the file belongs
    to.
    """

    def __init__(
        self,
        inputs: BpmaxInputs,
        chain: tuple[str, ...],
        retries: int = 0,
        **engine_kwargs,
    ) -> None:
        if not chain:
            raise ValueError("fallback chain must name at least one variant")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.inputs = inputs
        self.chain = tuple(chain)
        self.retries = retries
        self._kwargs = engine_kwargs
        self.degraded_from: tuple[str, ...] = ()
        self.variant = self.chain[0]
        self._active = self._build(self.chain[0])

    def _build(self, variant: str) -> BpmaxEngine:
        # baseline takes no tuning options; don't leak vectorized kwargs
        kwargs = {} if variant == "baseline" else self._kwargs
        return make_engine(self.inputs, variant, **kwargs)

    @property
    def table(self) -> FTable:
        return self._active.table

    @property
    def backend(self):
        return getattr(self._active, "backend", None)

    @property
    def backend_note(self):
        return getattr(self._active, "backend_note", None)

    @property
    def _fr(self):
        return getattr(self._active, "_fr", None)

    def run(self, **run_kwargs) -> float:
        failures: list[tuple[str, BaseException]] = []
        for idx, variant in enumerate(self.chain):
            if idx == 0:
                engine = self._active
            else:
                try:
                    engine = self._build(variant)
                except Exception as exc:
                    # a fallback that cannot even be constructed (e.g. the
                    # max-plus-only baseline offered as fallback for a
                    # log-sum-exp run) degrades like a crash, it does not
                    # sink the whole chain
                    failures.append(
                        (
                            variant,
                            EngineFailure(f"{type(exc).__name__}: {exc}", variant),
                        )
                    )
                    continue
            kwargs = (
                run_kwargs
                if idx == 0
                else {
                    k: v
                    for k, v in run_kwargs.items()
                    if k not in ("checkpoint", "resume")
                }
            )

            def attempt(engine=engine, kwargs=kwargs) -> float:
                return engine.run(**kwargs)

            try:
                if self.retries > 0:
                    score = retry(attempt, attempts=self.retries + 1, backoff=0.0)
                else:
                    score = attempt()
            except DeadlineExceeded:
                raise
            except BpmaxError as exc:
                failures.append((variant, exc))
                continue
            except Exception as exc:  # wrap foreign crashes for the boundary
                failures.append(
                    (variant, EngineFailure(f"{type(exc).__name__}: {exc}", variant))
                )
                continue
            self._active = engine
            self.variant = variant
            self.degraded_from = tuple(v for v, _ in failures)
            return score
        detail = "; ".join(f"{v}: {e}" for v, e in failures)
        raise EngineFailure(f"all engines in fallback chain failed ({detail})")


def make_engine(
    inputs: BpmaxInputs,
    variant: str = "hybrid-tiled",
    fallback: tuple[str, ...] = (),
    retries: int = 0,
    **kwargs,
) -> BpmaxEngine:
    """Instantiate a BPMax engine by paper program-version name.

    ``baseline`` is the original scalar diagonal-by-diagonal program;
    ``coarse`` / ``fine`` / ``hybrid`` / ``hybrid-tiled`` are the
    optimized versions of Figs. 15/16; ``batched`` routes R0 through the
    :mod:`repro.kernels` backend registry (stacked 3-D reductions,
    ``numpy-batched`` by default).  Extra kwargs (``tile``, ``threads``,
    ``order``, ``kernel``, ``layout``, ``backend``, ``fr_q``,
    ``fr_sparsify``) reach
    :class:`~repro.core.vectorized.VectorizedBPMax` — ``backend`` names
    any registered kernel backend and works with every vectorized
    variant.

    ``fallback`` names further variants to degrade to when ``variant``
    crashes, and ``retries`` adds per-variant transient retry; either
    one wraps the engine in a :class:`ResilientEngine`.
    """
    if fallback or retries:
        chain = (variant, *fallback)
        for v in chain:
            if v not in ENGINES:
                raise ValueError(f"unknown engine variant {v!r}; use one of {ENGINES}")
        return ResilientEngine(inputs, chain, retries=retries, **kwargs)
    if variant == "baseline":
        if kwargs:
            raise TypeError(f"baseline engine takes no options, got {kwargs}")
        return BaselineBPMax(inputs)
    if variant in VARIANT_CONFIGS:
        return VectorizedBPMax(inputs, variant=variant, **kwargs)
    raise ValueError(f"unknown engine variant {variant!r}; use one of {ENGINES}")
