"""Public convenience API: one-call BPMax scoring and structure prediction."""

from __future__ import annotations

from dataclasses import dataclass

from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..rna.sequence import RnaSequence
from .engine import ENGINES, make_engine
from .reference import BpmaxInputs, prepare_inputs
from .tables import FTable
from .traceback import InteractionStructure, traceback

__all__ = ["BpmaxResult", "bpmax", "fold"]


@dataclass(frozen=True)
class BpmaxResult:
    """Output of one BPMax run."""

    score: float
    variant: str
    inputs: BpmaxInputs
    table: FTable
    structure: InteractionStructure | None = None

    @property
    def n(self) -> int:
        return self.inputs.n

    @property
    def m(self) -> int:
        return self.inputs.m


def bpmax(
    seq1: RnaSequence | str,
    seq2: RnaSequence | str,
    variant: str = "hybrid-tiled",
    model: ScoringModel = DEFAULT_MODEL,
    structure: bool = False,
    **engine_kwargs,
) -> BpmaxResult:
    """Compute the BPMax interaction score of two RNA strands.

    Parameters
    ----------
    seq1, seq2:
        The interacting strands (strings or :class:`RnaSequence`).  For
        the tiled engine the first strand is treated as the outer (ideally
        shorter) sequence, as in the paper's 16 x 2500 workloads.
    variant:
        Program version: ``baseline`` (the original scalar code) or one of
        the optimized versions ``coarse | fine | hybrid | hybrid-tiled``.
    structure:
        Also run the traceback and attach an
        :class:`~repro.core.traceback.InteractionStructure`.

    Examples
    --------
    >>> result = bpmax("GCGCUUCG", "CGAAGCGC")
    >>> result.score > 0
    True
    """
    if variant not in ENGINES:
        raise ValueError(f"unknown variant {variant!r}; use one of {ENGINES}")
    inputs = prepare_inputs(seq1, seq2, model)
    engine = make_engine(inputs, variant, **engine_kwargs)
    score = engine.run()
    struct = traceback(inputs, engine.table) if structure else None
    return BpmaxResult(
        score=score,
        variant=variant,
        inputs=inputs,
        table=engine.table,
        structure=struct,
    )


def fold(
    seq: RnaSequence | str, model: ScoringModel = DEFAULT_MODEL
) -> tuple[float, str]:
    """Single-strand weighted Nussinov folding: (score, dot-bracket)."""
    from ..rna.nussinov import nussinov, nussinov_traceback, pairs_to_dotbracket

    s = seq if isinstance(seq, RnaSequence) else RnaSequence(seq)
    if len(s) == 0:
        raise ValueError("sequence must be non-empty")
    table = nussinov(s, model)
    pairs = nussinov_traceback(s, table, model)
    return float(table[0, len(s) - 1]) if len(s) > 1 else 0.0, pairs_to_dotbracket(
        len(s), pairs
    )
