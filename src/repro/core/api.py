"""Public convenience API: one-call BPMax scoring and structure prediction."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..observe.metrics import collecting
from ..observe.report import RunReport
from ..observe.tracer import trace
from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..rna.sequence import RnaSequence
from ..robust.checkpoint import CheckpointManager
from ..robust.deadline import Deadline
from ..robust.faults import FaultPlan
from .engine import ENGINES, make_engine
from .reference import BpmaxInputs, prepare_inputs
from .tables import FTable
from .traceback import InteractionStructure, traceback

__all__ = ["BpmaxResult", "bpmax", "fold", "serve_many"]


@dataclass(frozen=True)
class BpmaxResult:
    """Output of one BPMax run.

    ``variant`` is the program version that actually produced the score;
    when a fallback chain degraded, the crashed variants are listed in
    ``degraded_from`` (in attempt order).  ``resumed_windows`` counts
    outer windows restored from a checkpoint instead of recomputed.
    """

    score: float
    variant: str
    inputs: BpmaxInputs
    table: FTable
    structure: InteractionStructure | None = None
    degraded_from: tuple[str, ...] = ()
    resumed_windows: int = 0
    report: RunReport | None = None

    @property
    def n(self) -> int:
        return self.inputs.n

    @property
    def m(self) -> int:
        return self.inputs.m


def bpmax(
    seq1: RnaSequence | str,
    seq2: RnaSequence | str,
    variant: str = "hybrid-tiled",
    model: ScoringModel = DEFAULT_MODEL,
    semiring: str = "max-plus",
    structure: bool = False,
    fallback: tuple[str, ...] = (),
    retries: int = 0,
    checkpoint: str | os.PathLike | CheckpointManager | None = None,
    resume: bool = False,
    deadline: float | Deadline | None = None,
    faults: FaultPlan | None = None,
    metrics: bool = False,
    **engine_kwargs,
) -> BpmaxResult:
    """Compute the BPMax interaction score of two RNA strands.

    Parameters
    ----------
    seq1, seq2:
        The interacting strands (strings or :class:`RnaSequence`).  For
        the tiled engine the first strand is treated as the outer (ideally
        shorter) sequence, as in the paper's 16 x 2500 workloads.
    variant:
        Program version: ``baseline`` (the original scalar code) or one of
        the optimized versions ``coarse | fine | hybrid | hybrid-tiled``.
    semiring:
        Reduction algebra of the run: ``"max-plus"`` (BPMax, the exact
        float32 contract — default) or ``"logsumexp"`` (BPPart-style
        log-partition values from the same engines, float64, compared
        within tolerance).  ``baseline`` and ``structure=True`` are
        max-plus only.
    structure:
        Also run the traceback and attach an
        :class:`~repro.core.traceback.InteractionStructure`.
    fallback:
        Further variants to degrade to when ``variant`` crashes (e.g.
        ``("baseline",)``); the degradation is recorded on the result.
    retries:
        Transient-failure retries per variant (fresh engine each time).
    checkpoint:
        Snapshot path (or a preconfigured
        :class:`~repro.robust.checkpoint.CheckpointManager`): the engine
        periodically saves the partially-filled table there.
    resume:
        Restore a previous snapshot from ``checkpoint`` before running
        (a missing file means "start fresh"; a stale or foreign file
        raises :class:`~repro.robust.errors.CheckpointError`).
    deadline:
        Compute budget in seconds (or a running
        :class:`~repro.robust.deadline.Deadline`), polled cooperatively.
    faults:
        A :class:`~repro.robust.faults.FaultPlan` for injection testing.
    metrics:
        Collect per-run operation/traffic counters and attach a
        :class:`~repro.observe.report.RunReport` to the result.

    Examples
    --------
    >>> result = bpmax("GCGCUUCG", "CGAAGCGC")
    >>> result.score > 0
    True
    """
    if variant not in ENGINES:
        raise ValueError(f"unknown variant {variant!r}; use one of {ENGINES}")
    for v in fallback:
        if v not in ENGINES:
            raise ValueError(f"unknown fallback variant {v!r}; use one of {ENGINES}")
    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline(float(deadline))
    inputs = prepare_inputs(seq1, seq2, model, semiring=semiring)
    if structure and inputs.semiring != "max-plus":
        raise ValueError(
            "structure traceback follows max-plus argmax decisions; it is "
            f"undefined for semiring {inputs.semiring!r}"
        )
    engine = make_engine(
        inputs, variant, fallback=tuple(fallback), retries=retries, **engine_kwargs
    )

    run_kwargs: dict = {}
    resumed: frozenset[tuple[int, int]] = frozenset()
    if checkpoint is not None:
        if isinstance(checkpoint, CheckpointManager):
            ckpt = checkpoint
        else:
            ckpt = CheckpointManager(checkpoint, inputs, variant=variant)
        if resume and ckpt.path.exists():
            resumed = ckpt.load(engine.table)
            run_kwargs["resume"] = resumed
        run_kwargs["checkpoint"] = ckpt
    if deadline is not None:
        run_kwargs["deadline"] = deadline
    if faults is not None:
        run_kwargs["faults"] = faults

    report: RunReport | None = None
    with trace("bpmax", variant=variant, n=inputs.n, m=inputs.m):
        if metrics:
            with collecting() as counters:
                t0 = time.perf_counter()
                score = engine.run(**run_kwargs)
                wall = time.perf_counter() - t0
            ran_variant = getattr(engine, "variant", variant)
            backend = getattr(engine, "backend", None)
            extra: dict = {"semiring": inputs.semiring}
            fr = getattr(engine, "_fr", None)
            if fr is not None:
                extra["fr_q"] = fr.q
                extra["fr_sparsify"] = fr.sparsify
            note = getattr(engine, "backend_note", None)
            if note:
                extra["backend_note"] = note
            report = RunReport.from_counters(
                counters,
                n=inputs.n,
                m=inputs.m,
                variant=ran_variant,
                backend=backend.name if backend is not None else None,
                threads=getattr(engine, "threads", 1),
                wall_s=wall,
                score=score,
                resumed_windows=len(resumed),
                **extra,
            )
        else:
            score = engine.run(**run_kwargs)
    struct = traceback(inputs, engine.table) if structure else None
    return BpmaxResult(
        score=score,
        variant=getattr(engine, "variant", variant),
        inputs=inputs,
        table=engine.table,
        structure=struct,
        degraded_from=getattr(engine, "degraded_from", ()),
        resumed_windows=len(resumed),
        report=report,
    )


def serve_many(
    requests,
    variant: str = "hybrid-tiled",
    model: ScoringModel = DEFAULT_MODEL,
    semiring: str = "max-plus",
    structure: bool = False,
    max_batch: int = 16,
    max_delay_s: float = 0.01,
    workers: int = 2,
    cache: int | None = 1024,
    scheduler=None,
):
    """Serve a whole workload of scoring requests through the batch layer.

    The multi-request counterpart of :func:`bpmax`: requests are
    deduplicated against a content-addressed result cache, grouped into
    same-shape batches that share one kernel workspace, and dispatched
    over a worker pool — see :mod:`repro.serve`.  Returns one
    :class:`~repro.serve.request.ServeResult` per request, in input
    order; per-request failures come back as error results rather than
    exceptions, so one poisoned request never sinks the workload.

    Parameters
    ----------
    requests:
        An iterable of :class:`~repro.serve.request.SubmitRequest`, or
        of ``(seq1, seq2)`` pairs which are wrapped into requests using
        ``variant`` / ``model`` / ``semiring`` / ``structure``.
    max_batch, max_delay_s, workers, cache:
        Batching knobs forwarded to
        :class:`~repro.serve.scheduler.BatchScheduler` (size watermark,
        latency watermark, concurrent batches, cache capacity; ``cache=0``
        disables caching).
    scheduler:
        A preconfigured, still-open
        :class:`~repro.serve.scheduler.BatchScheduler` to reuse (kept
        open afterwards, so its cache persists across calls); overrides
        the batching knobs.

    Examples
    --------
    >>> results = serve_many([("GCGCUUCG", "CGAAGCGC"), ("GGGG", "CCCC")])
    >>> [r.ok for r in results]
    [True, True]
    """
    from ..serve.request import SubmitRequest
    from ..serve.scheduler import BatchScheduler

    prepared = []
    for idx, item in enumerate(requests):
        if isinstance(item, SubmitRequest):
            prepared.append(item)
        else:
            seq1, seq2 = item
            prepared.append(
                SubmitRequest(
                    seq1=str(seq1),
                    seq2=str(seq2),
                    id=f"req{idx}",
                    variant=variant,
                    model=model,
                    semiring=semiring,
                    structure=structure,
                )
            )
    with trace("serve_many", requests=len(prepared)):
        if scheduler is not None:
            return scheduler.serve_all(prepared)
        with BatchScheduler(
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            workers=workers,
            cache=cache if cache is not None else 0,
        ) as sched:
            return sched.serve_all(prepared)


def fold(
    seq: RnaSequence | str, model: ScoringModel = DEFAULT_MODEL
) -> tuple[float, str]:
    """Single-strand weighted Nussinov folding: (score, dot-bracket)."""
    from ..rna.nussinov import nussinov, nussinov_traceback, pairs_to_dotbracket

    s = seq if isinstance(seq, RnaSequence) else RnaSequence(seq)
    if len(s) == 0:
        raise ValueError("sequence must be non-empty")
    table = nussinov(s, model)
    pairs = nussinov_traceback(s, table, model)
    return float(table[0, len(s) - 1]) if len(s) > 1 else 0.0, pairs_to_dotbracket(
        len(s), pairs
    )
