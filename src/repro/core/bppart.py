"""BPPart-style partition functions for the base-pair counting model.

BPMax's companion algorithm BPPart (Ebrahimpour-Boroojeny et al., the
paper's ref. [3]) replaces maximization with the Boltzmann *partition
function* over the same joint-structure space; the paper motivates BPMax
by its high correlation with full thermodynamic models (Pearson 0.904 at
-180 C, 0.836 at 37 C against piRNA).  This module reproduces that
analysis at the scale this substrate affords:

* :func:`single_strand_partition` — exact unambiguous McCaskill-style
  DP for one strand (validated count-for-count against enumeration);
* :func:`duplex_partition` — exact unambiguous DP over monotone
  intermolecular matchings (likewise validated);
* :func:`partition_exact` — the exact joint partition function by
  Boltzmann-summing the enumerated structure space (exponential; tiny
  inputs only).  The full polynomial joint DP is the 11-table machinery
  of BPPart proper and is out of scope — the exact small-scale version
  suffices for the correlation study and keeps every number honest;
* :func:`correlation_study` — BPMax score vs. ensemble free energy over
  random sequence pairs at two temperatures, reproducing the paper's
  "BPMax captures a significant portion of the thermodynamic
  information" claim (higher correlation at lower temperature).

Energies follow the base-pair counting convention: ``E(S) = -weight(S)``
(one "kcal/mol" per hydrogen bond), so ``Z = sum exp(weight / RT)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .enumerate import enumerate_structures, structure_weight
from .reference import BpmaxInputs, bpmax_recursive, prepare_inputs
from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..rna.sequence import random_pair

__all__ = [
    "GAS_CONSTANT_KCAL",
    "beta_from_celsius",
    "bppart",
    "bppart_recursive",
    "single_strand_partition",
    "duplex_partition",
    "partition_exact",
    "EnsembleStats",
    "ensemble_stats",
    "PairProbabilities",
    "pair_probabilities",
    "suboptimal_structures",
    "CorrelationResult",
    "correlation_study",
]

#: R in kcal / (mol K), matching the counting model's 1-kcal-per-bond scale.
GAS_CONSTANT_KCAL = 0.0019872


def beta_from_celsius(temp_c: float) -> float:
    """Inverse temperature 1/RT for a Celsius temperature.

    The paper's reference temperatures: 37 C -> beta ~ 1.62 per bond,
    -180 C -> beta ~ 5.40 (the ensemble concentrates on the optimum).
    """
    kelvin = temp_c + 273.15
    if kelvin <= 0:
        raise ValueError(f"temperature {temp_c} C is at or below absolute zero")
    return 1.0 / (GAS_CONSTANT_KCAL * kelvin)


def bppart_recursive(inputs: BpmaxInputs) -> float:
    """Memoized-recursion oracle for the log-sum-exp BPMax recurrence.

    The exact transcription of :func:`~repro.core.reference.bpmax_recursive`
    with every ``max`` replaced by ``logaddexp`` — the semiring-generic
    engines must agree with this value within the corpus tolerance.  The
    returned quantity is the log of a sum of ``exp(weight)`` over
    *derivations* of the recurrence (the BPMax split decomposition is
    ambiguous, so one structure can contribute several derivations);
    ``exp(value)`` therefore upper-bounds the true partition function at
    ``beta = 1`` and the value itself upper-bounds the max-plus score.
    Inputs must come from ``prepare_inputs(..., semiring="logsumexp")``
    so the ``S`` tables are the log-space Nussinov folds.
    """
    if inputs.semiring != "logsumexp":
        raise ValueError(
            f"bppart_recursive needs logsumexp inputs; these were prepared "
            f"for {inputs.semiring!r} (pass semiring='logsumexp' to "
            "prepare_inputs)"
        )
    import sys

    n, m = inputs.n, inputs.m
    s1, s2 = inputs.s1, inputs.s2
    score1, score2, iscore = inputs.score1, inputs.score2, inputs.iscore
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000 + 50 * n * m))
    lse = np.logaddexp
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def f(i1: int, j1: int, i2: int, j2: int) -> float:
        # empty-window conventions (the paper's first two cases)
        if j1 < i1 and j2 < i2:
            return 0.0
        if j1 < i1:
            return float(s2[i2, j2])
        if j2 < i2:
            return float(s1[i1, j1])
        if i1 == j1 and i2 == j2:
            return float(iscore[i1, i2])
        best = float("-inf")
        # intramolecular closures
        if j1 > i1:
            best = lse(best, f(i1 + 1, j1 - 1, i2, j2) + float(score1[i1, j1]))
        if j2 > i2:
            best = lse(best, f(i1, j1, i2 + 1, j2 - 1) + float(score2[i2, j2]))
        # H: independent folds + the five reductions
        best = lse(best, float(s1[i1, j1]) + float(s2[i2, j2]))
        for k1 in range(i1, j1):  # R0
            for k2 in range(i2, j2):
                best = lse(best, f(i1, k1, i2, k2) + f(k1 + 1, j1, k2 + 1, j2))
        for k2 in range(i2, j2):  # R1, R2
            best = lse(best, float(s2[i2, k2]) + f(i1, j1, k2 + 1, j2))
            best = lse(best, f(i1, j1, i2, k2) + float(s2[k2 + 1, j2]))
        for k1 in range(i1, j1):  # R3, R4
            best = lse(best, float(s1[i1, k1]) + f(k1 + 1, j1, i2, j2))
            best = lse(best, f(i1, k1, i2, j2) + float(s1[k1 + 1, j1]))
        return float(best)

    return f(0, n - 1, 0, m - 1)


def bppart(seq1, seq2, model: ScoringModel = DEFAULT_MODEL, **kwargs):
    """BPPart value through the optimized engine path.

    A thin alias for ``bpmax(..., semiring="logsumexp")``: the partition
    log-value comes from the same batched/tiled wavefront engines as the
    max-plus score, just reduced in the log-sum-exp semiring.  Accepts
    every :func:`repro.core.api.bpmax` keyword (``variant``, ``backend``,
    ``threads``, ``report``, ...).
    """
    from .api import bpmax

    return bpmax(seq1, seq2, model=model, semiring="logsumexp", **kwargs)


def single_strand_partition(weights: np.ndarray, beta: float) -> np.ndarray:
    """Exact partition table of one strand (unambiguous McCaskill form).

    ``Q[i, j] = Q[i+1, j] + sum_k e^{beta w(i,k)} Q[i+1, k-1] Q[k+1, j]``
    — case on the leftmost base: unpaired, or paired to ``k``.  Empty
    windows have ``Q = 1``.  Returns the dense (n, n) table; entries
    below the diagonal are 1 (empty).
    """
    n = len(weights)
    q = np.ones((n + 1, n + 1), dtype=np.float64)

    def get(i: int, j: int) -> float:
        return 1.0 if j < i else q[i, j]

    for span in range(0, n):
        for i in range(0, n - span):
            j = i + span
            total = get(i + 1, j)
            for k in range(i + 1, j + 1):
                w = float(weights[i, k])
                if w > 0:
                    total += math.exp(beta * w) * get(i + 1, k - 1) * get(k + 1, j)
            q[i, j] = total
    return q[:n, :n]


def duplex_partition(inputs: BpmaxInputs, beta: float) -> float:
    """Exact partition function over monotone intermolecular matchings.

    Case on strand-1 base ``i1``: unmatched, or matched to ``k2`` (all
    strand-2 bases before ``k2`` left unmatched) — unambiguous.
    """
    n, m = inputs.n, inputs.m
    iw = inputs.iscore
    z = np.ones((n + 1, m + 1), dtype=np.float64)
    for i1 in range(n - 1, -1, -1):
        for i2 in range(m, -1, -1):
            total = z[i1 + 1, i2]
            for k2 in range(i2, m):
                w = float(iw[i1, k2])
                if w > 0:
                    total += math.exp(beta * w) * z[i1 + 1, k2 + 1]
            z[i1, i2] = total
    return float(z[0, 0])


def partition_exact(inputs: BpmaxInputs, beta: float) -> float:
    """Exact joint partition function by structure enumeration.

    Exponential — intended for the small strands of the correlation
    study and for validating the DPs above.
    """
    return sum(
        math.exp(beta * structure_weight(s, inputs))
        for s in enumerate_structures(inputs)
    )


@dataclass(frozen=True)
class EnsembleStats:
    """Summary of the Boltzmann ensemble of one sequence pair."""

    z: float
    free_energy: float  # -RT ln Z  (kcal/mol-equivalents)
    mfe_weight: float  # the BPMax optimum
    mfe_probability: float  # Boltzmann probability of one optimum
    expected_weight: float  # ensemble average of structure weight
    n_structures: int


def ensemble_stats(inputs: BpmaxInputs, beta: float) -> EnsembleStats:
    """Exact ensemble statistics from the enumerated space."""
    structures = enumerate_structures(inputs)
    weights = np.array([structure_weight(s, inputs) for s in structures])
    boltz = np.exp(beta * weights)
    z = float(boltz.sum())
    best = float(weights.max())
    return EnsembleStats(
        z=z,
        free_energy=-math.log(z) / beta,
        mfe_weight=best,
        mfe_probability=float(math.exp(beta * best) / z),
        expected_weight=float((weights * boltz).sum() / z),
        n_structures=len(structures),
    )


@dataclass(frozen=True)
class PairProbabilities:
    """Boltzmann pair probabilities of the joint ensemble.

    McCaskill-style output at small scale: for every admissible pair,
    the probability that a structure drawn from the Boltzmann ensemble
    contains it.  Computed exactly from the enumerated space.
    """

    intra1: dict[tuple[int, int], float]
    intra2: dict[tuple[int, int], float]
    inter: dict[tuple[int, int], float]

    def strand1_paired(self, i: int) -> float:
        """Probability that strand-1 base ``i`` is paired (any partner)."""
        p = sum(v for (a, b), v in self.intra1.items() if i in (a, b))
        p += sum(v for (a, _), v in self.inter.items() if a == i)
        return p

    def strand2_paired(self, j: int) -> float:
        p = sum(v for (a, b), v in self.intra2.items() if j in (a, b))
        p += sum(v for (_, b), v in self.inter.items() if b == j)
        return p


def pair_probabilities(inputs: BpmaxInputs, beta: float) -> PairProbabilities:
    """Exact ensemble pair probabilities by enumeration."""
    structures = enumerate_structures(inputs)
    weights = np.array([structure_weight(s, inputs) for s in structures])
    boltz = np.exp(beta * weights)
    z = float(boltz.sum())
    intra1: dict[tuple[int, int], float] = {}
    intra2: dict[tuple[int, int], float] = {}
    inter: dict[tuple[int, int], float] = {}
    for s, w in zip(structures, boltz):
        for p in s.pairs1:
            intra1[p] = intra1.get(p, 0.0) + float(w)
        for p in s.pairs2:
            intra2[p] = intra2.get(p, 0.0) + float(w)
        for p in s.inter:
            inter[p] = inter.get(p, 0.0) + float(w)
    return PairProbabilities(
        intra1={k: v / z for k, v in intra1.items()},
        intra2={k: v / z for k, v in intra2.items()},
        inter={k: v / z for k, v in inter.items()},
    )


def suboptimal_structures(
    inputs: BpmaxInputs, delta: float
) -> list[tuple[float, "object"]]:
    """All structures within ``delta`` of the optimum, best first.

    The Zuker-style suboptimal-ensemble view, exact by enumeration:
    returns ``(weight, structure)`` pairs with
    ``weight >= optimum - delta``, sorted by descending weight.
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    scored = [
        (structure_weight(s, inputs), s) for s in enumerate_structures(inputs)
    ]
    best = max(w for w, _ in scored)
    keep = [(w, s) for w, s in scored if w >= best - delta - 1e-9]
    keep.sort(key=lambda x: (-x[0], sorted(x[1].inter), sorted(x[1].pairs1)))
    return keep


@dataclass(frozen=True)
class CorrelationResult:
    """BPMax-vs-ensemble correlation at one temperature."""

    temperature_c: float
    beta: float
    pearson: float
    spearman: float
    n_samples: int


def correlation_study(
    temperatures_c: tuple[float, ...] = (-180.0, 37.0),
    n_samples: int = 30,
    lengths: tuple[int, int] = (4, 5),
    model: ScoringModel = DEFAULT_MODEL,
    rng: np.random.Generator | int | None = 0,
) -> list[CorrelationResult]:
    """Correlate BPMax scores with ensemble free energies.

    Mirrors the study motivating BPMax (paper §I): sample random pairs,
    compute the BPMax optimum and the exact negative free energy
    ``RT ln Z`` at each temperature, report Pearson and Spearman
    correlations.  Lower temperature concentrates the ensemble on the
    optimum, so the correlation must increase as T drops.
    """
    from scipy import stats

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    scores: list[float] = []
    lnz: dict[float, list[float]] = {t: [] for t in temperatures_c}
    betas = {t: beta_from_celsius(t) for t in temperatures_c}
    for _ in range(n_samples):
        s1, s2 = random_pair(lengths[0], lengths[1], rng)
        inputs = prepare_inputs(s1, s2, model)
        scores.append(float(bpmax_recursive(inputs)))
        structures = enumerate_structures(inputs)
        weights = np.array([structure_weight(s, inputs) for s in structures])
        for t in temperatures_c:
            z = float(np.exp(betas[t] * weights).sum())
            lnz[t].append(math.log(z) / betas[t])  # = -free energy
    out: list[CorrelationResult] = []
    for t in temperatures_c:
        pearson = float(stats.pearsonr(scores, lnz[t]).statistic)
        spearman = float(stats.spearmanr(scores, lnz[t]).statistic)
        out.append(
            CorrelationResult(
                temperature_c=t,
                beta=betas[t],
                pearson=pearson,
                spearman=spearman,
                n_samples=n_samples,
            )
        )
    return out
