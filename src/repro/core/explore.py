"""Automatic schedule exploration for the double max-plus kernel.

§IV-A enumerates the design space by hand: "The first two dimensions of
our multi-dimensional schedule can be either (j1-i1, i1) or (M-i1, j1) or
(-i1, j1) ... The inner three dimensions of the R0 can be in any order
since they do not have any dependencies.  However, auto-vectorization is
prohibited if k2 is the innermost loop iteration."

This module automates that exploration: it generates every candidate in
the paper's family (outer-order x inner-permutation), machine-checks each
against the dependences of :func:`repro.core.alpha_model.dmp_system`,
classifies vectorizability by the innermost dimension, and ranks the
legal candidates with the calibrated performance model — recovering the
paper's choice (``j2`` innermost, either outer order) automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from ..machine.perfmodel import PerfModel
from ..polyhedral.affine import AffineExpr, AffineMap, var
from ..polyhedral.dependence import check_all
from ..polyhedral.schedule import Schedule
from .alpha_model import dmp_system

__all__ = ["ScheduleCandidate", "dmp_candidates", "explore_dmp_schedules"]

_OUTER = {
    "diagonal": (AffineExpr.parse("j1-i1"), var("i1")),
    "bottomup": (AffineExpr.parse("0-i1"), var("j1")),
}

_INNER_DIMS = {
    "-i2": AffineExpr.parse("0-i2"),
    "k2": var("k2"),
    "j2": var("j2"),
}


@dataclass(frozen=True)
class ScheduleCandidate:
    """One point of the §IV-A design space."""

    name: str
    outer: str
    inner: tuple[str, str, str]
    body: Schedule  # R0 accumulation schedule (6-D)
    init: Schedule
    ready: Schedule
    f_schedule: Schedule
    legal: bool | None = None
    violations: int = 0
    vectorizable: bool = False
    predicted_gflops: float | None = None

    @property
    def innermost(self) -> str:
        return self.inner[-1]


def _subst(exprs, bindings) -> tuple[AffineExpr, ...]:
    return tuple(e.substitute(bindings) for e in exprs)


def dmp_candidates() -> list[ScheduleCandidate]:
    """Every (outer order) x (inner permutation) candidate of §IV-A."""
    out: list[ScheduleCandidate] = []
    z6 = ("i1", "j1", "i2", "j2", "k1", "k2")
    z4 = ("i1", "j1", "i2", "j2")
    for outer_name, outer in _OUTER.items():
        for inner in permutations(_INNER_DIMS):
            inner_exprs = tuple(_INNER_DIMS[d] for d in inner)
            body_exprs = outer + (var("k1"),) + inner_exprs
            body = Schedule("R0", AffineMap(inputs=z6, exprs=body_exprs))
            first_bind = {
                "k1": AffineExpr.parse("i1-1"),
                "k2": AffineExpr.parse("i2-1"),
            }
            last_bind = {
                "k1": AffineExpr.parse("j1-1"),
                "k2": AffineExpr.parse("j2-1"),
            }
            init = Schedule(
                "R0",
                AffineMap(inputs=z4, exprs=_subst(body_exprs, first_bind)),
            )
            ready = Schedule(
                "R0",
                AffineMap(inputs=z4, exprs=_subst(body_exprs, last_bind)),
            )
            # F copies after the reduction completes: k1 slot pinned to j1
            f_exprs = outer + (var("j1"),) + _subst(
                inner_exprs, {"k2": var("j2")}
            )
            f_sched = Schedule("F", AffineMap(inputs=z4, exprs=f_exprs))
            name = f"{outer_name}/{'-'.join(inner)}"
            out.append(
                ScheduleCandidate(
                    name=name,
                    outer=outer_name,
                    inner=tuple(inner),
                    body=body,
                    init=init,
                    ready=ready,
                    f_schedule=f_sched,
                    vectorizable=inner[-1] == "j2",
                )
            )
    return out


def explore_dmp_schedules(
    params: dict[str, int] | None = None,
    model: PerfModel | None = None,
    n: int = 16,
    m: int = 1024,
) -> list[ScheduleCandidate]:
    """Check legality of every candidate and rank by projected GFLOPS.

    Returns candidates sorted best-first (legal and vectorizable ahead,
    then by predicted performance).  The paper's published Table-I choice
    — ``j2`` innermost — ranks first.
    """
    params = params or {"N": 3, "M": 4}
    model = model or PerfModel()
    system = dmp_system()
    deps = system.dependences()
    results: list[ScheduleCandidate] = []
    for cand in dmp_candidates():
        schedules = {"R0": cand.body, "F": cand.f_schedule}
        ready = {"R0": cand.ready}
        violations = check_all(deps, schedules, params, producer_schedules=ready)
        legal = not violations
        predicted = None
        if legal:
            kernel = "fine-ltr" if cand.vectorizable else "base"
            perf = model.predict_dmp(kernel, n, m)
            # the paper finds a small gap between the two outer orders
            penalty = model.cal.diag_order_penalty if cand.outer == "diagonal" else 1.0
            predicted = perf.gflops / penalty
        results.append(
            ScheduleCandidate(
                name=cand.name,
                outer=cand.outer,
                inner=cand.inner,
                body=cand.body,
                init=cand.init,
                ready=cand.ready,
                f_schedule=cand.f_schedule,
                legal=legal,
                violations=len(violations),
                vectorizable=cand.vectorizable,
                predicted_gflops=predicted,
            )
        )
    results.sort(
        key=lambda c: (
            not c.legal,
            -(c.predicted_gflops or 0.0),
            c.name,
        )
    )
    return results
