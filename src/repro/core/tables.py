"""F-table storage: the 4-D "triangle of triangles" (paper Figs. 7, 9, 10).

``F[i1, j1, i2, j2]`` is stored as one dense inner matrix per outer window
``(i1, j1)``.  Two inner layouts are provided, matching the paper's two
memory-mapping experiments (Fig. 10):

* option 1 — ``(i2, j2) -> (i2, j2)``: the upper triangle of an M x M
  bounding box ("always performs better": rows are contiguous streams);
* option 2 — ``(i2, j2) -> (i2, j2 - i2)``: a packed skewed layout using
  the same box but shifting each row left.

Physically, the whole outer triangle lives in **one packed contiguous
buffer** of shape ``(T1(n), m, m)`` laid out row-major over ``(i1, j1)``:
window ``(i1, j1)`` is the slab ``packed[offset(i1, j1)]`` with

    offset(i1, j1) = row_start[i1] + (j1 - i1)

an O(1) affine map.  The payoff, beyond cutting the O(N^2) per-window
allocation churn of the old dict-of-arrays storage, is that every split
scan of the recurrence becomes a *contiguous slab view*: the R0/R4 left
operands of window ``(i1, j1)`` are exactly the ``j1 - i1`` consecutive
slabs starting at ``offset(i1, i1)`` (see :meth:`FTable.row_slab`),
which the tiled backend consumes with zero gathering.

The paper notes AlphaZ's default bounding-box allocation wastes 3/4 of
the M^2 N^2 box but the unused elements never move through the memory
hierarchy; :meth:`FTable.bytes_allocated` / :meth:`FTable.bytes_touched`
quantify exactly that (per *logically allocated* window — the backing
buffer is reserved once up front, but only windows the computation has
claimed count, preserving the Figs. 7/9 accounting).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["FTable", "MEMORY_LAYOUTS"]

MEMORY_LAYOUTS = ("option1", "option2")
NEG_INF = np.float32(-np.inf)


class FTable:
    """Triangular 4-D DP table in one packed contiguous buffer.

    Parameters
    ----------
    n: outer sequence length (windows ``0 <= i1 <= j1 < n``).
    m: inner sequence length.
    layout: inner memory map, ``"option1"`` or ``"option2"``.
    fill: initial value of inner matrices (``-inf`` marks "not computed",
        which every engine semiring treats as the reduction identity).
    dtype: element type of the packed buffer.  Max-plus keeps the
        paper's float32; the log-sum-exp semiring computes in float64.
    """

    def __init__(
        self,
        n: int,
        m: int,
        layout: str = "option1",
        fill: float = -np.inf,
        dtype=np.float32,
    ) -> None:
        if n <= 0 or m <= 0:
            raise ValueError(f"table sizes must be > 0, got ({n}, {m})")
        if layout not in MEMORY_LAYOUTS:
            raise ValueError(f"layout must be one of {MEMORY_LAYOUTS}, got {layout!r}")
        self.n = n
        self.m = m
        self.layout = layout
        self.dtype = np.dtype(dtype)
        self._fill = self.dtype.type(fill)
        # row-major over (i1, j1): row i1 holds windows (i1, i1) .. (i1, n-1)
        self._row_start = np.zeros(n + 1, dtype=np.int64)
        for i in range(n):
            self._row_start[i + 1] = self._row_start[i] + (n - i)
        self._buf = np.full(
            (int(self._row_start[n]), m, m), self._fill, dtype=self.dtype
        )
        self._alloc: set[tuple[int, int]] = set()
        self._shift: dict[tuple[int, int], np.ndarray] = {}
        self._aux: dict[tuple[int, int], dict[str, object]] = {}

    # -- packed addressing ---------------------------------------------------

    def offset(self, i1: int, j1: int) -> int:
        """O(1) affine index of window ``(i1, j1)`` in the packed buffer."""
        self._check_window(i1, j1)
        return int(self._row_start[i1]) + (j1 - i1)

    @property
    def packed(self) -> np.ndarray:
        """The whole ``(T1(n), m, m)`` packed buffer (row-major windows)."""
        return self._buf

    def row_slab(self, i1: int, j1: int, count: int) -> np.ndarray:
        """Contiguous view of windows ``(i1, j1) .. (i1, j1 + count - 1)``.

        This is the zero-copy form of the R0/R4 split scans: the ``count``
        left operands of a window's reduction are consecutive slabs of one
        outer row.  Raises when the range leaves the row.
        """
        if count < 0:
            raise ValueError(f"slab count must be >= 0, got {count}")
        off = self.offset(i1, j1)
        if j1 + count > self.n:
            raise IndexError(
                f"slab ({i1}, {j1})+{count} leaves the outer row for n={self.n}"
            )
        return self._buf[off : off + count]

    # -- window management --------------------------------------------------

    def windows(self) -> Iterator[tuple[int, int]]:
        """All outer windows in diagonal order."""
        for span in range(self.n):
            for i1 in range(self.n - span):
                yield (i1, i1 + span)

    def has(self, i1: int, j1: int) -> bool:
        return (i1, j1) in self._alloc

    def allocated(self) -> list[tuple[int, int]]:
        """The windows currently allocated (unordered snapshot)."""
        return list(self._alloc)

    def alloc(self, i1: int, j1: int) -> np.ndarray:
        """Allocate (or return) the inner matrix of window ``(i1, j1)``.

        The returned array is a view into the packed buffer, in *logical*
        (i2, j2) coordinates regardless of layout — option 2 is
        materialised through views on read/write.
        """
        off = self.offset(i1, j1)
        key = (i1, j1)
        if key not in self._alloc:
            self._alloc.add(key)
        else:
            # the caller may mutate the returned matrix; a cached shifted
            # copy of the old contents would go stale
            self._shift.pop(key, None)
            self._aux.pop(key, None)
        return self._buf[off]

    def inner(self, i1: int, j1: int) -> np.ndarray:
        """Inner matrix of a window; raises when not yet allocated."""
        off = self.offset(i1, j1)
        if (i1, j1) not in self._alloc:
            raise KeyError(f"window ({i1}, {j1}) not computed yet")
        return self._buf[off]

    def set_inner(self, i1: int, j1: int, values: np.ndarray) -> None:
        off = self.offset(i1, j1)
        if values.shape != (self.m, self.m):
            raise ValueError(
                f"inner matrix must be {(self.m, self.m)}, got {values.shape}"
            )
        np.copyto(self._buf[off], values, casting="unsafe")
        self._alloc.add((i1, j1))
        self._shift.pop((i1, j1), None)
        self._aux.pop((i1, j1), None)

    def shifted(self, i1: int, j1: int) -> np.ndarray:
        """Split-shifted copy ``B'[k2, j2] = B[k2+1, j2]`` (-inf last row).

        This is the right-operand form every R0 product consumes (see
        :func:`repro.core.dmp._shifted`).  It is computed once per
        *completed* window and cached, instead of being rebuilt by every
        consumer window — dropping O(N^3) M x M allocations per run.
        Callers must only ask for windows whose values are final;
        :meth:`alloc`, :meth:`set_inner` and :meth:`free` invalidate the
        cached copy.
        """
        key = (i1, j1)
        s = self._shift.get(key)
        if s is None:
            b = self.inner(i1, j1)
            s = np.full_like(b, self._fill)
            s[:-1, :] = b[1:, :]
            self._shift[key] = s
        return s

    def aux(self, i1: int, j1: int, name: str, build) -> object:
        """Kernel-owned derived data cached against a *completed* window.

        ``build()`` is called once per ``(window, name)`` and the result
        cached until the window's values change (:meth:`alloc`,
        :meth:`set_inner` and :meth:`free` invalidate, exactly like the
        :meth:`shifted` cache).  This keeps backend-specific derived
        forms — e.g. the Four-Russians difference encodings, computed
        once per source window but consumed by O(N) later windows —
        colocated with the values they are derived from, without the
        core table depending on any kernel module.
        """
        key = (i1, j1)
        slot = self._aux.setdefault(key, {})
        val = slot.get(name)
        if val is None:
            val = build()
            slot[name] = val
        return val

    def free(self, i1: int, j1: int) -> None:
        """Drop a window's storage (used by windowed/streaming modes)."""
        if (i1, j1) in self._alloc:
            self._alloc.discard((i1, j1))
            self._buf[self.offset(i1, j1)].fill(self._fill)
        self._shift.pop((i1, j1), None)
        self._aux.pop((i1, j1), None)

    # -- element access ------------------------------------------------------

    def get(self, i1: int, j1: int, i2: int, j2: int) -> float:
        """``F[i1, j1, i2, j2]`` for an in-domain point."""
        self._check_window(i1, j1)
        if not 0 <= i2 <= j2 < self.m:
            raise IndexError(f"inner window ({i2}, {j2}) out of range")
        return float(self.inner(i1, j1)[i2, j2])

    def physical(self, i1: int, j1: int) -> np.ndarray:
        """The window's matrix in its *physical* layout.

        Option 1 is the identity; option 2 shifts row ``i2`` left by
        ``i2`` so the diagonal maps to column 0.
        """
        logical = self.inner(i1, j1)
        if self.layout == "option1":
            return logical
        out = np.full_like(logical, self._fill)
        for i2 in range(self.m):
            out[i2, : self.m - i2] = logical[i2, i2:]
        return out

    # -- accounting (Figs. 7/9 and the §IV-B-c discussion) --------------------

    def bytes_allocated(self) -> int:
        """Bounding-box bytes of the windows logically allocated so far."""
        return len(self._alloc) * self.m * self.m * self.dtype.itemsize

    def bytes_touched(self) -> int:
        """Bytes of the triangular halves that the computation touches."""
        per_window = self.m * (self.m + 1) // 2 * self.dtype.itemsize
        return len(self._alloc) * per_window

    def full_allocation_bytes(self) -> int:
        """Bytes if every outer window were allocated (the M^2 N^2 box)."""
        return self.n * (self.n + 1) // 2 * self.m * self.m * self.dtype.itemsize

    def _check_window(self, i1: int, j1: int) -> None:
        if not 0 <= i1 <= j1 < self.n:
            raise IndexError(f"outer window ({i1}, {j1}) out of range for n={self.n}")

    def __repr__(self) -> str:
        return (
            f"FTable(n={self.n}, m={self.m}, layout={self.layout!r}, "
            f"windows={len(self._alloc)})"
        )
