"""repro — reproduction of "Accelerating the BPMax Algorithm for RNA-RNA
Interaction" (Mondal & Rajopadhye, 2021).

Top-level convenience surface::

    from repro import bpmax, fold
    result = bpmax("GCGCUUCG", "CGAAGCGC", structure=True)

Subpackages:

* :mod:`repro.rna` — alphabet, scoring, sequences, Nussinov folding;
* :mod:`repro.core` — BPMax engines, the mini-Alpha model, schedules;
* :mod:`repro.semiring` — max-plus kernels and the stream micro-benchmark;
* :mod:`repro.kernels` — pluggable kernel backends (``numpy``,
  ``numpy-batched``, optional ``numba``, the ``tiled`` wavefront
  executor with its window-block autotuner) and the per-engine
  :class:`~repro.kernels.Workspace` scratch pool;
* :mod:`repro.polyhedral` — the mini-AlphaZ framework (domains,
  schedules, dependences, tiling, the Alpha language, code generation);
* :mod:`repro.machine` — machine specs, roofline, work counters, the
  calibrated performance model;
* :mod:`repro.parallel` — OMP-style schedulers, DAG simulation, pools;
* :mod:`repro.observe` — zero-dependency tracing spans, per-run
  operation/traffic counters and roofline-linked run reports;
* :mod:`repro.robust` — fault tolerance: structured errors, retry,
  deadlines, checkpoint/resume, deterministic fault injection;
* :mod:`repro.serve` — the serving layer: request batching and
  coalescing, the content-addressed result cache, JSONL serving
  (``bpmax serve`` / ``bpmax submit`` / :func:`serve_many`), and the
  sharded multi-process tier (:class:`~repro.serve.ShardScheduler`)
  with admission control, load shedding and self-healing workers plus
  its seeded stress-scenario library, fronted by the stdlib HTTP
  gateway (:class:`~repro.serve.HttpGateway`, ``bpmax serve --http``)
  and its retry-aware client (:class:`~repro.serve.GatewayClient`);
* :mod:`repro.bench` — the experiment harness regenerating every paper
  table and figure.
"""

from .core.api import BpmaxResult, bpmax, fold, serve_many
from .core.engine import ENGINES
from .kernels import (
    DEFAULT_BACKEND,
    TiledExecutor,
    Workspace,
    available_backends,
    get_backend,
    get_tile_shape,
    tune,
)
from .observe import Counters, RunReport, collecting, trace, tracing
from .rna.scoring import DEFAULT_MODEL, ScoringModel
from .serve import (
    BatchScheduler,
    GatewayClient,
    HttpGateway,
    ResultCache,
    ServeResult,
    ShardScheduler,
    SubmitRequest,
)
from .rna.sequence import RnaSequence, random_pair, random_sequence
from .robust import (
    BpmaxError,
    CheckpointManager,
    Deadline,
    DeadlineExceeded,
    EngineFailure,
    FaultPlan,
    InvalidSequenceError,
    retry,
)

__version__ = "1.7.0"

__all__ = [
    "BpmaxResult",
    "bpmax",
    "fold",
    "serve_many",
    "BatchScheduler",
    "GatewayClient",
    "HttpGateway",
    "ResultCache",
    "ServeResult",
    "ShardScheduler",
    "SubmitRequest",
    "ENGINES",
    "DEFAULT_BACKEND",
    "TiledExecutor",
    "Workspace",
    "available_backends",
    "get_backend",
    "get_tile_shape",
    "tune",
    "Counters",
    "RunReport",
    "collecting",
    "trace",
    "tracing",
    "DEFAULT_MODEL",
    "ScoringModel",
    "RnaSequence",
    "random_pair",
    "random_sequence",
    "BpmaxError",
    "CheckpointManager",
    "Deadline",
    "DeadlineExceeded",
    "EngineFailure",
    "FaultPlan",
    "InvalidSequenceError",
    "retry",
    "__version__",
]
